// Reproduces Figure 7: fact-checking throughput (correctly verified claims
// per minute), grouped by user and by article, plus the headline average
// speedup factor.

#include "study_common.h"

int main() {
  using namespace aggchecker;
  bench::Header("Figure 7: claims verified per minute",
                "users are on average ~6x faster with the AggChecker");

  const auto& study = bench::SharedStudy();
  size_t num_users = 0;
  for (const auto& s : study.sessions) {
    num_users = std::max(num_users, s.user + 1);
  }

  std::printf("--- by user ---\n");
  std::printf("%8s %14s %10s %10s\n", "user", "AggChecker", "SQL",
              "speedup");
  double speedup_sum = 0;
  for (size_t u = 0; u < num_users; ++u) {
    double ac = study.ThroughputByUser(u, sim::Tool::kAggChecker);
    double sql = study.ThroughputByUser(u, sim::Tool::kSql);
    double speedup = sql > 0 ? ac / sql : 0;
    speedup_sum += speedup;
    std::printf("%8zu %14.2f %10.2f %9.1fx\n", u + 1, ac, sql, speedup);
  }
  std::printf("average speedup: %.1fx (paper: ~6x)\n",
              speedup_sum / static_cast<double>(num_users));

  std::printf("--- by article ---\n");
  std::printf("%-22s %14s %10s\n", "article", "AggChecker", "SQL");
  for (size_t a = 0; a < study.articles.size(); ++a) {
    std::printf("%-22s %14.2f %10.2f\n",
                study.articles[a].article->name.c_str(),
                study.ThroughputByArticle(a, sim::Tool::kAggChecker),
                study.ThroughputByArticle(a, sim::Tool::kSql));
  }
  return 0;
}
