// Reproduces Figure 7: fact-checking throughput (correctly verified claims
// per minute), grouped by user and by article, plus the headline average
// speedup factor.

#include "study_common.h"

int main() {
  using namespace aggchecker;
  bench::Header("Figure 7: claims verified per minute",
                "users are on average ~6x faster with the AggChecker");

  const auto& study = bench::SharedStudy();
  size_t num_users = 0;
  for (const auto& s : study.sessions) {
    num_users = std::max(num_users, s.user + 1);
  }

  std::printf("--- by user ---\n");
  std::printf("%8s %14s %10s %10s\n", "user", "AggChecker", "SQL",
              "speedup");
  double speedup_sum = 0;
  for (size_t u = 0; u < num_users; ++u) {
    double ac = study.ThroughputByUser(u, sim::Tool::kAggChecker);
    double sql = study.ThroughputByUser(u, sim::Tool::kSql);
    double speedup = sql > 0 ? ac / sql : 0;
    speedup_sum += speedup;
    std::printf("%8zu %14.2f %10.2f %9.1fx\n", u + 1, ac, sql, speedup);
  }
  std::printf("average speedup: %.1fx (paper: ~6x)\n",
              speedup_sum / static_cast<double>(num_users));

  std::printf("--- by article ---\n");
  std::printf("%-22s %14s %10s\n", "article", "AggChecker", "SQL");
  for (size_t a = 0; a < study.articles.size(); ++a) {
    std::printf("%-22s %14.2f %10.2f\n",
                study.articles[a].article->name.c_str(),
                study.ThroughputByArticle(a, sim::Tool::kAggChecker),
                study.ThroughputByArticle(a, sim::Tool::kSql));
  }

  // Where the backend time behind those throughputs goes: the per-phase
  // EvalStats breakdown plus the plan-reuse counters, summed over articles.
  db::EvalStats total;
  for (const auto& article : study.articles) {
    const db::EvalStats& s = article.report.eval_stats;
    total.query_seconds += s.query_seconds;
    total.plan_seconds += s.plan_seconds;
    total.execute_seconds += s.execute_seconds;
    total.fold_seconds += s.fold_seconds;
    total.answer_seconds += s.answer_seconds;
    total.join_seconds += s.join_seconds;
    total.plans_built += s.plans_built;
    total.plan_cache_hits += s.plan_cache_hits;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.cube_queries += s.cube_queries;
  }
  std::printf("--- backend phases (all articles) ---\n");
  std::printf("query %.4fs = plan %.4fs + execute %.4fs + fold %.4fs + "
              "answer %.4fs (join %.4fs within execute)\n",
              total.query_seconds, total.plan_seconds, total.execute_seconds,
              total.fold_seconds, total.answer_seconds, total.join_seconds);
  std::printf("cube queries %zu, result cache %zu hits / %zu misses, "
              "plans built %zu, plan cache hits %zu\n",
              total.cube_queries, total.cache_hits, total.cache_misses,
              total.plans_built, total.plan_cache_hits);
  return 0;
}
