// Parallel determinism: the checking pipeline must produce bit-identical
// CheckReports (verdicts, top queries, probabilities, governor usage
// totals) for any num_threads, and chaos/starvation scenarios must keep
// surfacing only documented Status codes when workers are involved.
// See DESIGN.md "Concurrency contract".

#include <gtest/gtest.h>

#include <atomic>
#include <cinttypes>
#include <string>
#include <thread>
#include <vector>

#include "core/aggchecker.h"
#include "corpus/embedded_articles.h"
#include "corpus/generator.h"
#include "db/eval_engine.h"
#include "util/fault_injection.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace aggchecker {
namespace {

namespace fi = fault_injection;

/// Exact (hexfloat) rendering so two doubles compare bit-identical.
std::string Bits(double v) { return strings::Format("%a", v); }
std::string Bits(const std::optional<double>& v) {
  return v.has_value() ? Bits(*v) : "none";
}

/// Canonical rendering of everything in a CheckReport that the determinism
/// contract covers. Excluded on purpose: wall-clock fields (total_seconds,
/// query_seconds) and GovernorUsage::checkpoints — the inspection *count*
/// depends on how charges interleave across threads (documented), while the
/// charge totals do not.
std::string Fingerprint(const core::CheckReport& report) {
  std::string out;
  out += strings::Format("em=%d cand=%zu evaluated=%zu\n",
                         report.em_iterations, report.total_candidates,
                         report.queries_evaluated);
  out += strings::Format(
      "stats: answered=%zu cubes=%zu hits=%zu misses=%zu rows=%zu "
      "aborted=%zu\n",
      report.eval_stats.queries_answered, report.eval_stats.cube_queries,
      report.eval_stats.cache_hits, report.eval_stats.cache_misses,
      report.eval_stats.rows_scanned, report.eval_stats.queries_aborted);
  out += strings::Format(
      "governor: rows=%" PRIu64 " groups=%" PRIu64 " mem=%" PRIu64
      " exhausted=%d code=%d\n",
      report.governor_usage.rows_charged,
      report.governor_usage.cube_groups_charged,
      report.governor_usage.memory_bytes_charged,
      report.governor_usage.exhausted ? 1 : 0,
      static_cast<int>(report.governor_usage.stop_code));
  for (const auto& v : report.verdicts) {
    out += strings::Format(
        "claim %s value=%s candidates=%zu correct=%s err=%d partial=%d\n",
        v.claim.id.c_str(), Bits(v.claim.claimed_value()).c_str(),
        v.total_candidates, Bits(v.correctness_probability).c_str(),
        v.likely_erroneous ? 1 : 0, v.partial ? 1 : 0);
    for (const auto& q : v.top_queries) {
      out += strings::Format(
          "  p=%s result=%s match=%d kw=%s prior=%s sql=%s\n",
          Bits(q.probability).c_str(), Bits(q.result).c_str(),
          q.matches ? 1 : 0, Bits(q.keyword_score).c_str(),
          Bits(q.prior).c_str(), q.query.ToSql().c_str());
    }
  }
  return out;
}

core::CheckOptions ThreadedOptions(size_t num_threads) {
  core::CheckOptions options;
  options.model.num_threads = num_threads;
  return options;
}

std::string RunCase(const corpus::CorpusCase& test_case,
                    core::CheckOptions options) {
  auto checker = core::AggChecker::Create(&test_case.database, options);
  EXPECT_TRUE(checker.ok()) << checker.status().ToString();
  if (!checker.ok()) return "create-failed";
  auto report = checker->Check(test_case.document);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (!report.ok()) return "check-failed";
  return Fingerprint(*report);
}

// The acceptance bar: the full embedded corpus produces identical reports
// at 1, 2, and 8 threads, on both cube strategies and the naive executor.
TEST(ParallelDeterminismTest, EmbeddedCorpusIdenticalAcrossThreadCounts) {
  fi::DisarmAll();
  auto corpus = corpus::EmbeddedArticles();
  ASSERT_FALSE(corpus.empty());
  for (db::EvalStrategy strategy :
       {db::EvalStrategy::kMergedCached, db::EvalStrategy::kNaive}) {
    for (const auto& test_case : corpus) {
      core::CheckOptions serial = ThreadedOptions(1);
      serial.strategy = strategy;
      std::string baseline = RunCase(test_case, serial);
      ASSERT_NE(baseline, "check-failed");
      EXPECT_NE(baseline.find("claim "), std::string::npos)
          << "baseline produced no verdicts for " << test_case.name;
      for (size_t threads : {size_t{2}, size_t{8}}) {
        core::CheckOptions threaded = ThreadedOptions(threads);
        threaded.strategy = strategy;
        EXPECT_EQ(RunCase(test_case, threaded), baseline)
            << test_case.name << " with " << threads << " threads, strategy "
            << db::EvalStrategyName(strategy);
      }
    }
  }
}

// Generated cases vary schemas/joins beyond the embedded articles; also
// pins that governor *totals* (not just verdicts) are thread-invariant
// when no limit trips.
TEST(ParallelDeterminismTest, GeneratedCasesIdenticalAcrossThreadCounts) {
  fi::DisarmAll();
  corpus::GeneratorOptions options;
  options.num_cases = 4;
  options.seed = 20260807;
  for (size_t c = 0; c < options.num_cases; ++c) {
    corpus::CorpusCase test_case = corpus::GenerateCase(c, options);
    std::string baseline = RunCase(test_case, ThreadedOptions(1));
    EXPECT_NE(baseline.find("governor: rows="), std::string::npos);
    for (size_t threads : {size_t{2}, size_t{8}}) {
      EXPECT_EQ(RunCase(test_case, ThreadedOptions(threads)), baseline)
          << "case " << c << " with " << threads << " threads";
    }
  }
}

// The cube backends are interchangeable: the vectorized pipeline and the
// row-at-a-time scalar oracle produce bit-identical reports — including
// governor charge totals (both modes charge the same canonical modeled
// constants) — at any thread count.
TEST(ParallelDeterminismTest, CubeExecModesProduceIdenticalReports) {
  fi::DisarmAll();
  corpus::GeneratorOptions options;
  options.num_cases = 3;
  options.seed = 808;
  for (size_t c = 0; c < options.num_cases; ++c) {
    corpus::CorpusCase test_case = corpus::GenerateCase(c, options);
    core::CheckOptions oracle = ThreadedOptions(1);
    oracle.cube_exec = db::CubeExecMode::kScalarOracle;
    std::string baseline = RunCase(test_case, oracle);
    ASSERT_NE(baseline, "check-failed");
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      core::CheckOptions vectorized = ThreadedOptions(threads);
      vectorized.cube_exec = db::CubeExecMode::kVectorized;
      EXPECT_EQ(RunCase(test_case, vectorized), baseline)
          << "case " << c << " vectorized with " << threads << " threads";
    }
  }
}

// Engine-level determinism: the merged/cached strategies must keep their
// exact cache hit/miss/cube counters (asserted elsewhere for the serial
// path) when a pool is attached, including across batches.
TEST(ParallelDeterminismTest, EngineStatsIdenticalWithPool) {
  corpus::GeneratorOptions options;
  options.seed = 7;
  corpus::CorpusCase test_case = corpus::GenerateCase(2, options);
  const db::Database& db = test_case.database;
  std::vector<db::SimpleAggregateQuery> batch;
  const db::Table& table = db.table(0);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const db::Column& column = table.column(c);
    if (column.is_numeric()) continue;
    for (const db::Value& v : column.DistinctValues()) {
      db::SimpleAggregateQuery q;
      q.fn = db::AggFn::kCount;
      q.agg_column = {table.name(), ""};
      q.predicates = {{{table.name(), column.name()}, v}};
      batch.push_back(q);
    }
  }
  ASSERT_FALSE(batch.empty());

  for (db::EvalStrategy strategy :
       {db::EvalStrategy::kNaive, db::EvalStrategy::kMerged,
        db::EvalStrategy::kMergedCached}) {
    db::EvalEngine serial(&db, strategy);
    auto expected_first = serial.EvaluateBatch(batch);
    auto expected_second = serial.EvaluateBatch(batch);

    ThreadPool pool(8);
    db::EvalEngine threaded(&db, strategy);
    threaded.SetThreadPool(&pool);
    EXPECT_EQ(threaded.EvaluateBatch(batch), expected_first)
        << db::EvalStrategyName(strategy);
    EXPECT_EQ(threaded.EvaluateBatch(batch), expected_second)
        << db::EvalStrategyName(strategy);

    EXPECT_EQ(threaded.stats().cube_queries, serial.stats().cube_queries);
    EXPECT_EQ(threaded.stats().cache_hits, serial.stats().cache_hits);
    EXPECT_EQ(threaded.stats().cache_misses, serial.stats().cache_misses);
    EXPECT_EQ(threaded.stats().rows_scanned, serial.stats().rows_scanned);
    EXPECT_EQ(threaded.stats().queries_aborted, 0u);
  }
}

// Regression: NoteHardError fires from many workers at once (every query
// fails with an injected kInternal); the channel must surface exactly one
// error, keep it first-error-wins, and clear on consume — no torn Status,
// no lost error.
TEST(ParallelDeterminismTest, HardErrorChannelSafeUnderConcurrentWorkers) {
  fi::DisarmAll();
  corpus::GeneratorOptions options;
  options.seed = 7;
  corpus::CorpusCase test_case = corpus::GenerateCase(1, options);
  const db::Database& db = test_case.database;
  std::vector<db::SimpleAggregateQuery> batch;
  for (int i = 0; i < 64; ++i) {
    db::SimpleAggregateQuery q;
    q.fn = db::AggFn::kCount;
    q.agg_column = {db.table(0).name(), ""};
    batch.push_back(q);
  }

  for (const char* point : {"executor.execute", "cube.materialize"}) {
    const bool naive = std::string(point) == "executor.execute";
    ThreadPool pool(8);
    db::EvalEngine engine(
        &db, naive ? db::EvalStrategy::kNaive : db::EvalStrategy::kMerged);
    engine.SetThreadPool(&pool);

    fi::FaultSpec spec;
    spec.message = "concurrent boom";
    fi::Arm(point, spec);
    auto results = engine.EvaluateBatch(batch);
    fi::DisarmAll();

    for (const auto& r : results) EXPECT_FALSE(r.has_value());
    Status error = engine.ConsumeHardError();
    ASSERT_FALSE(error.ok()) << point;
    EXPECT_EQ(error.code(), StatusCode::kInternal);
    EXPECT_NE(error.message().find("concurrent boom"), std::string::npos);
    EXPECT_TRUE(engine.ConsumeHardError().ok()) << "channel must clear";
  }
}

// Chaos under threads: every documented fault point still degrades into a
// documented Status (no crash, no undocumented code) with workers active.
TEST(ParallelDeterminismTest, FaultPointsStillDocumentedWithThreads) {
  fi::DisarmAll();
  corpus::GeneratorOptions options;
  options.num_cases = 2;
  options.seed = 31337;
  const std::vector<std::string> points = {
      "executor.execute", "cube.materialize", "em.iterate", "check.run"};
  auto documented = [](const Status& status) {
    return status.ok() || status.code() == StatusCode::kInternal ||
           status.code() == StatusCode::kParseError ||
           status.IsResourceExhausted();
  };
  for (size_t c = 0; c < options.num_cases; ++c) {
    corpus::CorpusCase test_case = corpus::GenerateCase(c, options);
    for (size_t p = 0; p < points.size(); ++p) {
      for (db::EvalStrategy strategy :
           {db::EvalStrategy::kMergedCached, db::EvalStrategy::kNaive}) {
        fi::FaultSpec spec;
        spec.trigger_on_hit = 1 + (c + p) % 3;
        fi::Arm(points[p], spec);
        core::CheckOptions check_options = ThreadedOptions(8);
        check_options.strategy = strategy;
        auto checker =
            core::AggChecker::Create(&test_case.database, check_options);
        Status status = checker.ok() ? Status::OK() : checker.status();
        if (checker.ok()) {
          auto report = checker->Check(test_case.document);
          if (!report.ok()) status = report.status();
        }
        EXPECT_TRUE(documented(status))
            << "case " << c << " point " << points[p] << ": "
            << status.ToString();
        fi::DisarmAll();
      }
    }
  }
}

// Self-healing under concurrency (the TSan interplay regression): one
// thread's run trips its max_memory_bytes budget while another thread's
// fault domain is mid-backoff retrying a transient vectorized-scan fault.
// The two runs share only the global fault registry (mutex-guarded); the
// recovering run must heal without quarantine and produce verdicts
// bit-identical across 1, 2, and 8 worker threads, no matter how the
// starved neighbor's trip interleaves with the backoff sleeps.
TEST(ParallelDeterminismTest, MemoryTripDuringBackoffStaysDeterministic) {
  fi::DisarmAll();
  corpus::GeneratorOptions options;
  options.num_cases = 2;
  options.seed = 20260808;
  corpus::CorpusCase starved_case = corpus::GenerateCase(0, options);
  corpus::CorpusCase healing_case = corpus::GenerateCase(1, options);

  // Transient + every hit: the recovering run retries with backoff on the
  // primary rung (both retries re-fault), then heals on the scalar-cube
  // rung. trip_rate 1.0 keeps firing independent of how the two runs'
  // shared hit counter interleaves.
  fi::FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.message = "transient vectorized scan";
  fi::Arm("cube.scan.vectorized", spec);

  std::string baseline;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    std::atomic<bool> starved_ok{true};
    std::string starved_error;
    std::thread starved([&] {
      core::CheckOptions starved_options;
      starved_options.governor.max_memory_bytes = 1;  // trips immediately
      auto checker =
          core::AggChecker::Create(&starved_case.database, starved_options);
      if (!checker.ok()) {
        starved_ok = false;
        starved_error = checker.status().ToString();
        return;
      }
      auto report = checker->Check(starved_case.document);
      // Budget starvation degrades to partial verdicts; a documented
      // resource stop is the only acceptable failure.
      if (!report.ok() && !report.status().IsResourceExhausted()) {
        starved_ok = false;
        starved_error = report.status().ToString();
      }
    });

    core::CheckOptions healing_options = ThreadedOptions(threads);
    auto checker =
        core::AggChecker::Create(&healing_case.database, healing_options);
    ASSERT_TRUE(checker.ok());
    auto report = checker->Check(healing_case.document);
    starved.join();

    EXPECT_TRUE(starved_ok) << starved_error;
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GT(report->eval_stats.recovery_retries, 0u)
        << "the transient fault must put the fault domain into backoff";
    EXPECT_GT(report->eval_stats.queries_recovered, 0u);
    EXPECT_EQ(report->NumQuarantined(), 0u);
    std::string fingerprint = Fingerprint(*report);
    if (threads == 1) {
      baseline = fingerprint;
    } else {
      EXPECT_EQ(fingerprint, baseline)
          << threads << " threads diverged while a neighbor tripped memory";
    }
  }
  fi::DisarmAll();
}

// Starved budgets with workers: still no errors, partial-never-erroneous,
// the documented stop code, and no double-counted partial work
// (aborted <= answered; every partial verdict implies an exhausted run).
TEST(ParallelDeterminismTest, StarvedBudgetsDegradeGracefullyWithThreads) {
  fi::DisarmAll();
  corpus::GeneratorOptions options;
  options.num_cases = 3;
  options.seed = 4242;
  for (size_t c = 0; c < options.num_cases; ++c) {
    corpus::CorpusCase test_case = corpus::GenerateCase(c, options);
    for (uint64_t budget : {uint64_t{1}, uint64_t{5000}, uint64_t{100000}}) {
      core::CheckOptions check_options = ThreadedOptions(8);
      check_options.governor.max_row_scans = budget;
      // Pair each row budget with a memory budget in a different decade so
      // either limit may trip first; degradation must look the same.
      check_options.governor.max_memory_bytes = budget * 64;
      auto checker =
          core::AggChecker::Create(&test_case.database, check_options);
      ASSERT_TRUE(checker.ok());
      auto report = checker->Check(test_case.document);
      ASSERT_TRUE(report.ok())
          << "case " << c << " budget " << budget << ": "
          << report.status().ToString();
      for (const auto& verdict : report->verdicts) {
        if (verdict.partial) {
          EXPECT_FALSE(verdict.likely_erroneous)
              << "partial claim flagged erroneous (case " << c << ", budget "
              << budget << ")";
        }
      }
      EXPECT_LE(report->eval_stats.queries_aborted,
                report->eval_stats.queries_answered)
          << "aborted queries double-counted (case " << c << ", budget "
          << budget << ")";
      if (report->NumPartial() > 0) {
        EXPECT_TRUE(report->governor_usage.exhausted);
      }
      if (report->governor_usage.exhausted) {
        EXPECT_EQ(report->governor_usage.stop_code,
                  StatusCode::kBudgetExhausted);
      }
    }
  }
}

}  // namespace
}  // namespace aggchecker
