// Property tests over the whole corpus: every ground-truth query
// round-trips through both serializations (SQL text and canonical key),
// and the natural-language describer covers every query without falling
// back to generic phrasing.

#include <gtest/gtest.h>

#include "core/query_describer.h"
#include "corpus/corpus.h"
#include "db/sql_parser.h"

namespace aggchecker {
namespace {

class CorpusQueriesTest : public ::testing::TestWithParam<size_t> {
 protected:
  static const std::vector<corpus::CorpusCase>& Corpus() {
    static const std::vector<corpus::CorpusCase>* kCorpus =
        new std::vector<corpus::CorpusCase>(corpus::FullCorpus());
    return *kCorpus;
  }
};

TEST_P(CorpusQueriesTest, GroundTruthSqlRoundTrips) {
  const corpus::CorpusCase& c = Corpus()[GetParam()];
  for (const auto& g : c.ground_truth) {
    auto parsed = db::ParseSql(g.query.ToSql(), c.database);
    ASSERT_TRUE(parsed.ok())
        << c.name << ": " << g.query.ToSql() << " -> "
        << parsed.status().ToString();
    EXPECT_TRUE(*parsed == g.query) << g.query.ToSql();
  }
}

TEST_P(CorpusQueriesTest, GroundTruthCanonicalKeyRoundTrips) {
  const corpus::CorpusCase& c = Corpus()[GetParam()];
  for (const auto& g : c.ground_truth) {
    auto parsed =
        db::SimpleAggregateQuery::FromCanonicalKey(g.query.CanonicalKey());
    ASSERT_TRUE(parsed.ok()) << c.name << ": " << g.query.CanonicalKey();
    EXPECT_TRUE(*parsed == g.query) << g.query.CanonicalKey();
    EXPECT_EQ(parsed->CanonicalKey(), g.query.CanonicalKey());
  }
}

TEST_P(CorpusQueriesTest, DescriberCoversEveryGroundTruthQuery) {
  const corpus::CorpusCase& c = Corpus()[GetParam()];
  for (const auto& g : c.ground_truth) {
    std::string description = core::DescribeQuery(g.query);
    EXPECT_GT(description.size(), 10u) << g.query.ToSql();
    EXPECT_EQ(description.find("The value was"), std::string::npos)
        << "generic fallback for " << g.query.ToSql();
    // Every predicate value appears in the description.
    for (const auto& p : g.query.predicates) {
      if (g.query.fn == db::AggFn::kConditionalProbability) continue;
      EXPECT_NE(description.find(p.value.ToString()), std::string::npos)
          << description;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCases, CorpusQueriesTest,
                         ::testing::Range(size_t{0}, size_t{53}));

}  // namespace
}  // namespace aggchecker
