#include "corpus/harness.h"

#include <gtest/gtest.h>

#include "corpus/embedded_articles.h"
#include "util/fault_injection.h"

namespace aggchecker {
namespace corpus {
namespace {

std::vector<CorpusCase> SmallCorpus() {
  std::vector<CorpusCase> corpus;
  corpus.push_back(MakeNflCase());
  corpus.push_back(MakeDeveloperSurveyCase());
  return corpus;
}

TEST(HarnessTest, AggregatesAcrossCases) {
  auto corpus = SmallCorpus();
  auto result = RunOnCorpus(corpus, core::CheckOptions{});
  ASSERT_EQ(result.reports.size(), 2u);
  EXPECT_EQ(result.coverage.total, corpus[0].ground_truth.size() +
                                       corpus[1].ground_truth.size());
  EXPECT_EQ(result.detection.total_claims, result.coverage.total);
  EXPECT_GT(result.queries_evaluated, 0u);
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GE(result.total_seconds, result.query_seconds);
}

TEST(HarnessTest, ForcesTop20Reporting) {
  auto corpus = SmallCorpus();
  core::CheckOptions options;
  options.report_top_k = 3;  // harness must widen this for top-20 coverage
  auto result = RunOnCorpus(corpus, options);
  for (const auto& report : result.reports) {
    for (const auto& v : report.verdicts) {
      // At least some verdicts carry more than 3 candidates.
      if (v.top_queries.size() > 3) return;
    }
  }
  FAIL() << "report_top_k was not widened";
}

TEST(HarnessTest, RecoveryCountersSurfaceInRunResult) {
  fault_injection::DisarmAll();
  auto corpus = SmallCorpus();

  core::CheckOptions options;
  options.recovery.retry.initial_backoff_ms = 0;  // sleep-free sweep
  auto clean = RunOnCorpus(corpus, options);
  EXPECT_EQ(clean.recovery_retries, 0u);
  EXPECT_EQ(clean.ladder_descents, 0u);
  EXPECT_EQ(clean.claims_recovered, 0u);
  EXPECT_EQ(clean.claims_quarantined, 0u);

  fault_injection::Arm("cube.scan.vectorized");
  auto healed = RunOnCorpus(corpus, options);
  fault_injection::DisarmAll();
  EXPECT_GT(healed.ladder_descents, 0u)
      << "harness must aggregate engine recovery counters";
  EXPECT_GT(healed.queries_recovered, 0u);
  EXPECT_GT(healed.claims_recovered, 0u);
  EXPECT_EQ(healed.claims_quarantined, 0u);
  // Recovery heals to the bit-identical twin path: verdicts match.
  ASSERT_EQ(healed.reports.size(), clean.reports.size());
  EXPECT_EQ(healed.detection.true_positives, clean.detection.true_positives);
  EXPECT_EQ(healed.detection.false_positives, clean.detection.false_positives);
}

TEST(HarnessTest, CoverageMonotoneInK) {
  auto corpus = SmallCorpus();
  auto result = RunOnCorpus(corpus, core::CheckOptions{});
  for (size_t k = 2; k <= 20; ++k) {
    EXPECT_GE(result.coverage.TopK(k), result.coverage.TopK(k - 1)) << k;
  }
}

TEST(HarnessTest, DetectionConsistentWithReports) {
  auto corpus = SmallCorpus();
  auto result = RunOnCorpus(corpus, core::CheckOptions{});
  size_t flagged = 0;
  for (const auto& report : result.reports) flagged += report.NumFlagged();
  EXPECT_EQ(flagged,
            result.detection.true_positives + result.detection.false_positives);
}

TEST(HarnessTest, EmptyCorpus) {
  std::vector<CorpusCase> empty;
  auto result = RunOnCorpus(empty, core::CheckOptions{});
  EXPECT_TRUE(result.reports.empty());
  EXPECT_EQ(result.coverage.total, 0u);
}

}  // namespace
}  // namespace corpus
}  // namespace aggchecker
