#include "ir/porter_stemmer.h"

#include <gtest/gtest.h>

namespace aggchecker {
namespace ir {
namespace {

TEST(PorterStemmerTest, Plurals) {
  EXPECT_EQ(PorterStem("caresses"), "caress");
  EXPECT_EQ(PorterStem("ponies"), "poni");
  EXPECT_EQ(PorterStem("caress"), "caress");
  EXPECT_EQ(PorterStem("cats"), "cat");
  EXPECT_EQ(PorterStem("suspensions"), PorterStem("suspension"));
}

TEST(PorterStemmerTest, PastTenseAndGerunds) {
  EXPECT_EQ(PorterStem("plastered"), "plaster");
  EXPECT_EQ(PorterStem("motoring"), "motor");
  EXPECT_EQ(PorterStem("donated"), PorterStem("donate"));
  EXPECT_EQ(PorterStem("donating"), PorterStem("donation"));
}

TEST(PorterStemmerTest, ClassicExamples) {
  EXPECT_EQ(PorterStem("relational"), "relat");
  EXPECT_EQ(PorterStem("conditional"), "condit");
  EXPECT_EQ(PorterStem("probability"), "probabl");
  EXPECT_EQ(PorterStem("verification"), "verif");
  EXPECT_EQ(PorterStem("verify"), "verifi");
}

TEST(PorterStemmerTest, DomainVocabularyCollapses) {
  EXPECT_EQ(PorterStem("candidates"), PorterStem("candidate"));
  EXPECT_EQ(PorterStem("respondents"), PorterStem("respondent"));
  EXPECT_EQ(PorterStem("gambling"), PorterStem("gambling"));
  EXPECT_EQ(PorterStem("bans"), PorterStem("ban"));
}

TEST(PorterStemmerTest, ShortAndNonAlphaUnchanged) {
  EXPECT_EQ(PorterStem("as"), "as");
  EXPECT_EQ(PorterStem("13.6"), "13.6");
  EXPECT_EQ(PorterStem("don't"), "don't");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(PorterStemmerTest, StemIsIdempotentOnCommonWords) {
  for (const char* w : {"running", "flies", "happiness", "national",
                        "triplicate", "generalization", "oscillators"}) {
    std::string once = PorterStem(w);
    EXPECT_EQ(PorterStem(once), once) << w;
  }
}

}  // namespace
}  // namespace ir
}  // namespace aggchecker
