#include "core/interactive_session.h"

#include <gtest/gtest.h>

#include "corpus/embedded_articles.h"
#include "corpus/metrics.h"
#include "test_fixtures.h"
#include "text/document.h"

namespace aggchecker {
namespace core {
namespace {

// Deliberately hard article: the second paragraph's claim has no useful
// keywords for its restriction ("the long-gone four" with Games='indef'
// never mentioned), so only prior propagation from corrected claims can
// resolve it.
constexpr const char* kArticle = R"(
<h1>Suspensions</h1>
<p>There were only four previous lifetime bans in my database. Three were
for repeated substance abuse, one was for gambling.</p>
)";

struct SessionFixture {
  SessionFixture()
      : test_case(corpus::MakeNflCase()),
        checker_holder(AggChecker::Create(&test_case.database)) {
    checker = &*checker_holder;
  }
  corpus::CorpusCase test_case;
  Result<AggChecker> checker_holder;
  AggChecker* checker;
};

TEST(InteractiveSessionTest, StartRunsAutomatedPass) {
  SessionFixture f;
  auto session = InteractiveSession::Start(f.checker, &f.test_case.document);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session->num_claims(), f.test_case.ground_truth.size());
  EXPECT_EQ(session->NumPinned(), 0u);
  EXPECT_FALSE(session->report().verdicts.empty());
}

TEST(InteractiveSessionTest, StartValidatesArguments) {
  SessionFixture f;
  EXPECT_FALSE(InteractiveSession::Start(nullptr, &f.test_case.document)
                   .ok());
  EXPECT_FALSE(InteractiveSession::Start(f.checker, nullptr).ok());
}

TEST(InteractiveSessionTest, SelectCandidatePinsPointMass) {
  SessionFixture f;
  auto session = InteractiveSession::Start(f.checker, &f.test_case.document);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->SelectCandidate(0, 1).ok());
  EXPECT_TRUE(session->IsPinned(0));
  EXPECT_EQ(session->NumPinned(), 1u);
  ASSERT_TRUE(session->Refresh().ok());
  const auto& verdict = session->report().verdicts[0];
  ASSERT_EQ(verdict.top_queries.size(), 1u);
  EXPECT_DOUBLE_EQ(verdict.top_queries[0].probability, 1.0);
}

TEST(InteractiveSessionTest, SelectCandidateRankChecked) {
  SessionFixture f;
  auto session = InteractiveSession::Start(f.checker, &f.test_case.document);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->SelectCandidate(999, 1).ok());
  EXPECT_FALSE(session->SelectCandidate(0, 0).ok());
  EXPECT_FALSE(session->SelectCandidate(0, 999).ok());
}

TEST(InteractiveSessionTest, CustomQueryValidated) {
  SessionFixture f;
  auto session = InteractiveSession::Start(f.checker, &f.test_case.document);
  ASSERT_TRUE(session.ok());
  // Invalid query rejected, pin state unchanged.
  db::SimpleAggregateQuery bad;
  bad.fn = db::AggFn::kSum;
  bad.agg_column = {"nflsuspensions", "Name"};
  EXPECT_FALSE(session->SetCustomQuery(0, bad).ok());
  EXPECT_FALSE(session->IsPinned(0));
  // Valid custom query pins the claim; after refresh the verdict follows
  // the user's query.
  auto q = testing_fixtures::CountStar(
      "nflsuspensions",
      {{{"nflsuspensions", "Games"}, db::Value(std::string("indef"))}});
  ASSERT_TRUE(session->SetCustomQuery(0, q).ok());
  ASSERT_TRUE(session->Refresh().ok());
  const auto& verdict = session->report().verdicts[0];
  EXPECT_TRUE(verdict.top_queries[0].query == q);
  EXPECT_FALSE(verdict.likely_erroneous);  // Count=4 matches claim "four"
}

TEST(InteractiveSessionTest, ClearCorrectionRestoresAutomatic) {
  SessionFixture f;
  auto session = InteractiveSession::Start(f.checker, &f.test_case.document);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->SelectCandidate(1, 1).ok());
  ASSERT_TRUE(session->ClearCorrection(1).ok());
  EXPECT_FALSE(session->IsPinned(1));
  ASSERT_TRUE(session->Refresh().ok());
  EXPECT_GT(session->report().verdicts[1].top_queries.size(), 1u);
}

TEST(InteractiveSessionTest, PinnedWrongQueryFlagsClaim) {
  SessionFixture f;
  auto session = InteractiveSession::Start(f.checker, &f.test_case.document);
  ASSERT_TRUE(session.ok());
  // Pin claim "four" to a query that evaluates to 16: the user's own
  // translation says the claim is wrong.
  auto q = testing_fixtures::CountStar("nflsuspensions");
  ASSERT_TRUE(session->SetCustomQuery(0, q).ok());
  ASSERT_TRUE(session->Refresh().ok());
  EXPECT_TRUE(session->report().verdicts[0].likely_erroneous);
}

TEST(InteractiveSessionTest, CorrectionPropagatesThroughPriors) {
  // Pin every claim of the NFL case to its ground truth except one, then
  // check that the remaining claim's ground-truth rank does not degrade
  // (the priors now reflect the document's true theme).
  SessionFixture f;
  auto session = InteractiveSession::Start(f.checker, &f.test_case.document);
  ASSERT_TRUE(session.ok());

  size_t target = 7;  // the erroneous percentage claim (hard)
  size_t before_rank = corpus::GroundTruthRank(
      f.test_case.ground_truth[target],
      session->report().verdicts[target]);
  for (size_t i = 0; i < session->num_claims(); ++i) {
    if (i == target) continue;
    ASSERT_TRUE(
        session->SetCustomQuery(i, f.test_case.ground_truth[i].query).ok());
  }
  ASSERT_TRUE(session->Refresh().ok());
  size_t after_rank = corpus::GroundTruthRank(
      f.test_case.ground_truth[target],
      session->report().verdicts[target]);
  // Rank 0 means "absent"; treat as a large rank for comparison.
  auto effective = [](size_t r) { return r == 0 ? size_t{99} : r; };
  EXPECT_LE(effective(after_rank), effective(before_rank));
}


TEST(InteractiveSessionTest, DismissClaimRemovesFromReport) {
  SessionFixture f;
  auto session = InteractiveSession::Start(f.checker, &f.test_case.document);
  ASSERT_TRUE(session.ok());
  size_t n = session->num_claims();
  ASSERT_TRUE(session->DismissClaim(3).ok());
  EXPECT_TRUE(session->IsDismissed(3));
  ASSERT_TRUE(session->Refresh().ok());
  // Report stays index-aligned; the dismissed verdict is inert.
  ASSERT_EQ(session->report().verdicts.size(), n);
  const auto& v = session->report().verdicts[3];
  EXPECT_TRUE(v.dismissed);
  EXPECT_FALSE(v.likely_erroneous);
  EXPECT_TRUE(v.top_queries.empty());
  // Other claims still translate.
  EXPECT_FALSE(session->report().verdicts[0].top_queries.empty());
  // Dismissal is reversible.
  ASSERT_TRUE(session->ClearCorrection(3).ok());
  EXPECT_FALSE(session->IsDismissed(3));
  ASSERT_TRUE(session->Refresh().ok());
  EXPECT_FALSE(session->report().verdicts[3].top_queries.empty());
}

TEST(InteractiveSessionTest, DismissOutOfRange) {
  SessionFixture f;
  auto session = InteractiveSession::Start(f.checker, &f.test_case.document);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->DismissClaim(999).ok());
}

TEST(RoundingModeTest, ModesOrderedByStrictness) {
  using rounding::Matches;
  using rounding::RoundingMode;
  // 13.6 claimed as 14: rounds under significant digits, fails exact,
  // passes 5% tolerance.
  EXPECT_TRUE(Matches(13.6, 14, RoundingMode::kSignificantDigits));
  EXPECT_FALSE(Matches(13.6, 14, RoundingMode::kExact));
  EXPECT_TRUE(Matches(13.6, 14, RoundingMode::kRelativeTolerance, 0.05));
  EXPECT_FALSE(Matches(13.6, 14, RoundingMode::kRelativeTolerance, 0.01));
  // Exact matches pass everywhere.
  for (auto mode : {RoundingMode::kSignificantDigits, RoundingMode::kExact,
                    RoundingMode::kRelativeTolerance}) {
    EXPECT_TRUE(Matches(42.0, 42.0, mode));
  }
}

TEST(RoundingModeTest, TranslatorHonorsMode) {
  SessionFixture f;
  // Strict matching: the '50,000' average-fine claim still matches (the
  // average is exactly 50000), but rounded percentage claims fail.
  CheckOptions options;
  options.model.rounding_mode = rounding::RoundingMode::kExact;
  auto checker = AggChecker::Create(&f.test_case.database, options);
  ASSERT_TRUE(checker.ok());
  auto report = checker->Check(f.test_case.document);
  ASSERT_TRUE(report.ok());
  // Strictness can only increase the number of flagged claims.
  auto default_checker = AggChecker::Create(&f.test_case.database);
  auto default_report = default_checker->Check(f.test_case.document);
  EXPECT_GE(report->NumFlagged(), default_report->NumFlagged());
}

}  // namespace
}  // namespace core
}  // namespace aggchecker
