// Failure-injection and odd-input robustness: the pipeline must degrade
// gracefully — never crash, never mis-handle — on hostile or degenerate
// inputs.

#include <gtest/gtest.h>

#include "core/aggchecker.h"
#include "corpus/export.h"
#include "fragments/catalog.h"
#include "text/document.h"

namespace aggchecker {
namespace {

db::Database SingleColumnDb(std::vector<db::Value> values,
                            const char* column = "x") {
  db::Database database("d");
  db::Table t("data");
  (void)t.AddColumn(column, values.empty() || values[0].is_numeric()
                                ? db::ValueType::kLong
                                : db::ValueType::kString);
  for (auto& v : values) (void)t.AddRow({std::move(v)});
  (void)database.AddTable(std::move(t));
  return database;
}

TEST(RobustnessTest, EmptyTableChecks) {
  db::Database database("d");
  db::Table t("empty");
  (void)t.AddColumn("col", db::ValueType::kString);
  (void)database.AddTable(std::move(t));
  auto doc = text::ParseDocument("There are 5 things here.");
  auto checker = core::AggChecker::Create(&database);
  ASSERT_TRUE(checker.ok());
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->verdicts.size(), 1u);
  // Nothing in an empty table evaluates to 5; the claim is flagged.
  EXPECT_TRUE(report->verdicts[0].likely_erroneous);
}

TEST(RobustnessTest, AllNullColumn) {
  auto database = SingleColumnDb(
      {db::Value::Null(), db::Value::Null(), db::Value::Null()});
  auto doc = text::ParseDocument("The data lists 3 rows overall.");
  auto checker = core::AggChecker::Create(&database);
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->verdicts[0].likely_erroneous);  // Count(*) = 3
}

TEST(RobustnessTest, HostileColumnAndValueNames) {
  db::Database database("d");
  db::Table t("weird");
  ASSERT_TRUE(t.AddColumn("col with spaces", db::ValueType::kString).ok());
  ASSERT_TRUE(t.AddColumn("sum|agg='x'", db::ValueType::kString).ok());
  (void)t.AddRow({db::Value(std::string("va'l,ue")),
                  db::Value(std::string("<tag>"))});
  (void)t.AddRow({db::Value(std::string("")),
                  db::Value(std::string("indef"))});
  (void)database.AddTable(std::move(t));
  auto doc = text::ParseDocument("Our weird table has 2 rows in it.");
  auto checker = core::AggChecker::Create(&database);
  ASSERT_TRUE(checker.ok());
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->verdicts[0].likely_erroneous);
  // Export round-trips hostile content too (quoted CSV).
  std::string csv_text =
      corpus::TableToCsv(*database.FindTable("weird"));
  auto parsed = csv::Parse(csv_text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows[0][0], "va'l,ue");
}

TEST(RobustnessTest, VeryLongSentenceAndHugeNumbers) {
  auto database = SingleColumnDb({db::Value(int64_t{1}),
                                  db::Value(int64_t{2})});
  std::string longsent = "The value was 99999999999999 units";
  for (int i = 0; i < 200; ++i) longsent += " and more words keep coming";
  longsent += ".";
  auto doc = text::ParseDocument(longsent);
  ASSERT_TRUE(doc.ok());
  auto checker = core::AggChecker::Create(&database);
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->verdicts.size(), 1u);
  EXPECT_TRUE(report->verdicts[0].likely_erroneous);
}

TEST(RobustnessTest, ClaimDenseDocument) {
  // 60 claims in one paragraph; the checker must stay bounded and aligned.
  auto database = SingleColumnDb({db::Value(int64_t{7})});
  std::string text;
  for (int i = 0; i < 60; ++i) {
    text += "Metric number " + std::to_string(100 + i) + " was reported. ";
  }
  auto doc = text::ParseDocument(text);
  auto checker = core::AggChecker::Create(&database);
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdicts.size(), 60u);
}

TEST(RobustnessTest, LiteralCapZeroDisablesPredicates) {
  auto database = SingleColumnDb({db::Value(std::string("a")),
                                  db::Value(std::string("b"))});
  core::CheckOptions options;
  options.catalog.max_literals_per_column = 0;
  auto checker = core::AggChecker::Create(&database, options);
  ASSERT_TRUE(checker.ok());
  EXPECT_TRUE(checker->catalog()
                  .fragments(fragments::FragmentType::kPredicate)
                  .empty());
  auto doc = text::ParseDocument("The data lists 2 rows in total.");
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->verdicts[0].likely_erroneous);
}

TEST(RobustnessTest, UnicodeTextPassesThrough) {
  auto database = SingleColumnDb({db::Value(std::string("café")),
                                  db::Value(std::string("naïve"))});
  auto doc = text::ParseDocument(
      "Das Dokument enthält 2 Zeilen — naïve café entries.");
  ASSERT_TRUE(doc.ok());
  auto checker = core::AggChecker::Create(&database);
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->verdicts.size(), 1u);
}

TEST(RobustnessTest, DocumentWithOnlyHeadlines) {
  EXPECT_FALSE(text::ParseDocument("<h1>Title</h1>\n<h2>Empty</h2>\n").ok());
}

TEST(RobustnessTest, WideTableManyColumns) {
  // 60 columns (Stack Overflow's survey has 154): catalog stays bounded.
  db::Database database("wide");
  db::Table t("survey");
  for (int c = 0; c < 60; ++c) {
    (void)t.AddColumn("q" + std::to_string(c), db::ValueType::kLong);
  }
  for (int r = 0; r < 20; ++r) {
    std::vector<db::Value> row;
    for (int c = 0; c < 60; ++c) {
      row.push_back(db::Value(static_cast<int64_t>(r * c % 7)));
    }
    (void)t.AddRow(std::move(row));
  }
  (void)database.AddTable(std::move(t));
  auto checker = core::AggChecker::Create(&database);
  ASSERT_TRUE(checker.ok());
  auto doc = text::ParseDocument("The survey covers 20 respondents.");
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->verdicts[0].likely_erroneous);
}

}  // namespace
}  // namespace aggchecker
