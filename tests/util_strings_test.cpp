#include "util/strings.h"

#include <gtest/gtest.h>

namespace aggchecker {
namespace {

using strings::EditDistance;
using strings::Join;
using strings::Split;
using strings::SplitWhitespace;
using strings::ToLower;
using strings::Trim;

TEST(StringsTest, ToLowerBasic) {
  EXPECT_EQ(ToLower("AbC dEf"), "abc def");
  EXPECT_EQ(ToLower(""), "");
  EXPECT_EQ(ToLower("123-XYZ"), "123-xyz");
}

TEST(StringsTest, ToUpperBasic) {
  EXPECT_EQ(strings::ToUpper("abC"), "ABC");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(strings::StartsWith("foobar", "foo"));
  EXPECT_FALSE(strings::StartsWith("fo", "foo"));
  EXPECT_TRUE(strings::EndsWith("foobar", "bar"));
  EXPECT_FALSE(strings::EndsWith("ar", "bar"));
  EXPECT_TRUE(strings::StartsWith("x", ""));
}

TEST(StringsTest, IsDigits) {
  EXPECT_TRUE(strings::IsDigits("0123"));
  EXPECT_FALSE(strings::IsDigits(""));
  EXPECT_FALSE(strings::IsDigits("12a"));
  EXPECT_FALSE(strings::IsDigits("-12"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(strings::ReplaceAll("a,b,,c", ",", ";"), "a;b;;c");
  EXPECT_EQ(strings::ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(strings::ReplaceAll("x", "", "y"), "x");
}

TEST(StringsTest, EditDistanceKnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "ab"), 2u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
}

TEST(StringsTest, EditDistanceSymmetry) {
  EXPECT_EQ(EditDistance("flaw", "lawn"), EditDistance("lawn", "flaw"));
}

TEST(StringsTest, Format) {
  EXPECT_EQ(strings::Format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strings::Format("%.2f", 3.14159), "3.14");
}

}  // namespace
}  // namespace aggchecker
