#include "db/eval_engine.h"

#include <gtest/gtest.h>

#include "db/relation_cache.h"
#include "test_fixtures.h"
#include "util/rng.h"

namespace aggchecker {
namespace db {
namespace {

using testing_fixtures::CountStar;
using testing_fixtures::MakeNflDatabase;
using testing_fixtures::MakeOrdersDatabase;

SimpleAggregateQuery IndefCount() {
  return CountStar("nflsuspensions", {{{"nflsuspensions", "Games"},
                                       Value(std::string("indef"))}});
}

TEST(EvalEngineTest, NaiveMatchesDirectExecutor) {
  auto database = MakeNflDatabase();
  EvalEngine engine(&database, EvalStrategy::kNaive);
  EXPECT_DOUBLE_EQ(engine.Evaluate(IndefCount()).value(), 4.0);
  EXPECT_EQ(engine.stats().cube_queries, 0u);
}

TEST(EvalEngineTest, MergedGroupsQueriesIntoOneCube) {
  auto database = MakeNflDatabase();
  EvalEngine engine(&database, EvalStrategy::kMerged);
  // Four candidates sharing the predicate column set {Games, Category},
  // with two different aggregates: one cube query suffices.
  std::vector<SimpleAggregateQuery> batch;
  for (const char* cat : {"gambling", "substance abuse repeated offense"}) {
    auto q = IndefCount();
    q.predicates.push_back(
        {{"nflsuspensions", "Category"}, Value(std::string(cat))});
    batch.push_back(q);
    q.fn = AggFn::kCountDistinct;
    q.agg_column = {"nflsuspensions", "Team"};
    batch.push_back(q);
  }
  auto results = engine.EvaluateBatch(batch);
  EXPECT_DOUBLE_EQ(results[0].value(), 1.0);
  EXPECT_DOUBLE_EQ(results[1].value(), 1.0);
  EXPECT_DOUBLE_EQ(results[2].value(), 3.0);
  EXPECT_DOUBLE_EQ(results[3].value(), 3.0);
  EXPECT_EQ(engine.stats().cube_queries, 1u);
}

TEST(EvalEngineTest, CacheHitsAcrossBatches) {
  auto database = MakeNflDatabase();
  EvalEngine engine(&database, EvalStrategy::kMergedCached);
  auto q = IndefCount();
  (void)engine.EvaluateBatch({q});
  EXPECT_EQ(engine.stats().cache_misses, 1u);
  EXPECT_EQ(engine.stats().cube_queries, 1u);
  // Second identical batch: fully served from cache.
  auto results = engine.EvaluateBatch({q});
  EXPECT_DOUBLE_EQ(results[0].value(), 4.0);
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  EXPECT_EQ(engine.stats().cube_queries, 1u);
}

TEST(EvalEngineTest, RollupReuseFromSupersetDims) {
  auto database = MakeNflDatabase();
  EvalEngine engine(&database, EvalStrategy::kMergedCached);
  // Prime the cache with a two-dimension cube.
  auto two = IndefCount();
  two.predicates.push_back(
      {{"nflsuspensions", "Category"}, Value(std::string("gambling"))});
  (void)engine.EvaluateBatch({two});
  size_t cubes_before = engine.stats().cube_queries;
  // A one-dimension query on Games is answerable from the cached cube's
  // rollup cells — no new cube execution.
  auto one = IndefCount();
  auto results = engine.EvaluateBatch({one});
  EXPECT_DOUBLE_EQ(results[0].value(), 4.0);
  EXPECT_EQ(engine.stats().cube_queries, cubes_before);
  EXPECT_GE(engine.stats().cache_hits, 1u);
}

TEST(EvalEngineTest, CacheMissOnNewLiteral) {
  auto database = MakeNflDatabase();
  EvalEngine engine(&database, EvalStrategy::kMergedCached);
  (void)engine.EvaluateBatch({IndefCount()});
  // Same dims but a literal outside the cached relevant set -> re-execute.
  auto q = CountStar("nflsuspensions",
                     {{{"nflsuspensions", "Games"},
                       Value(std::string("16"))}});
  auto results = engine.EvaluateBatch({q});
  EXPECT_DOUBLE_EQ(results[0].value(), 1.0);
  EXPECT_EQ(engine.stats().cube_queries, 2u);
}

TEST(EvalEngineTest, ClearCacheForcesReexecution) {
  auto database = MakeNflDatabase();
  EvalEngine engine(&database, EvalStrategy::kMergedCached);
  (void)engine.EvaluateBatch({IndefCount()});
  engine.ClearCache();
  (void)engine.EvaluateBatch({IndefCount()});
  EXPECT_EQ(engine.stats().cube_queries, 2u);
}

TEST(EvalEngineTest, InvalidQueryYieldsNulloptInAllStrategies) {
  auto database = MakeNflDatabase();
  SimpleAggregateQuery bad;
  bad.fn = AggFn::kSum;
  bad.agg_column = {"nflsuspensions", "Name"};  // non-numeric
  for (auto strategy : {EvalStrategy::kNaive, EvalStrategy::kMerged,
                        EvalStrategy::kMergedCached}) {
    EvalEngine engine(&database, strategy);
    EXPECT_FALSE(engine.Evaluate(bad).has_value());
  }
}

TEST(EvalEngineTest, UnsatisfiablePredicatesConsistent) {
  auto database = MakeNflDatabase();
  auto q = CountStar(
      "nflsuspensions",
      {{{"nflsuspensions", "Games"}, Value(std::string("indef"))},
       {{"nflsuspensions", "Games"}, Value(std::string("16"))}});
  for (auto strategy : {EvalStrategy::kNaive, EvalStrategy::kMerged,
                        EvalStrategy::kMergedCached}) {
    EvalEngine engine(&database, strategy);
    EXPECT_DOUBLE_EQ(engine.Evaluate(q).value(), 0.0);
  }
}

TEST(EvalEngineTest, DuplicateIdenticalPredicatesDeduped) {
  auto database = MakeNflDatabase();
  auto q = IndefCount();
  q.predicates.push_back(q.predicates[0]);
  for (auto strategy : {EvalStrategy::kNaive, EvalStrategy::kMerged,
                        EvalStrategy::kMergedCached}) {
    EvalEngine engine(&database, strategy);
    EXPECT_DOUBLE_EQ(engine.Evaluate(q).value(), 4.0);
  }
}

TEST(EvalEngineTest, RatioAggregatesViaCube) {
  auto database = MakeNflDatabase();
  EvalEngine engine(&database, EvalStrategy::kMerged);
  SimpleAggregateQuery pct;
  pct.fn = AggFn::kPercentage;
  pct.agg_column = {"nflsuspensions", "Category"};
  pct.predicates = {
      {{"nflsuspensions", "Category"}, Value(std::string("gambling"))}};
  EXPECT_DOUBLE_EQ(engine.Evaluate(pct).value(), 10.0);

  SimpleAggregateQuery cp;
  cp.fn = AggFn::kConditionalProbability;
  cp.agg_column = {"nflsuspensions", ""};
  cp.predicates = {
      {{"nflsuspensions", "Games"}, Value(std::string("indef"))},
      {{"nflsuspensions", "Category"},
       Value(std::string("substance abuse repeated offense"))}};
  EXPECT_DOUBLE_EQ(engine.Evaluate(cp).value(), 75.0);
}


TEST(EvalEngineTest, CrossRelationQueriesNeverShareCubes) {
  // Regression test for the join-merging bug: Count(*) over a base table
  // must not be answered from a cube built over a PK-FK join (the join
  // multiplies FK-side rows and drops dangling ones).
  auto database = MakeOrdersDatabase();
  EvalEngine engine(&database, EvalStrategy::kMergedCached);

  SimpleAggregateQuery count_customers = CountStar("customers");
  SimpleAggregateQuery count_orders = CountStar("orders");
  SimpleAggregateQuery count_joined = CountStar(
      "orders", {{{"customers", "region"}, Value(std::string("east"))}});
  auto results =
      engine.EvaluateBatch({count_customers, count_orders, count_joined});
  EXPECT_DOUBLE_EQ(results[0].value(), 3.0);  // base table, not join
  EXPECT_DOUBLE_EQ(results[1].value(), 5.0);  // dangling row included
  EXPECT_DOUBLE_EQ(results[2].value(), 3.0);  // joined count

  // And cached entries stay relation-scoped: re-ask the base-table counts
  // after the join cube exists.
  auto again = engine.EvaluateBatch({count_customers, count_orders});
  EXPECT_DOUBLE_EQ(again[0].value(), 3.0);
  EXPECT_DOUBLE_EQ(again[1].value(), 5.0);
}

TEST(EvalEngineTest, JoinsBuiltOncePerTableSetPerRun) {
  // Acceptance property of the shared relation cache: in merged/cached
  // mode a checking run materializes each distinct table set at most once,
  // no matter how many batches, claims, or EM iterations ask for it.
  auto database = MakeOrdersDatabase();
  database.relation_cache().Clear();
  EvalEngine engine(&database, EvalStrategy::kMergedCached);

  SimpleAggregateQuery joined = CountStar(
      "orders", {{{"customers", "region"}, Value(std::string("east"))}});
  SimpleAggregateQuery joined_sum = joined;
  joined_sum.fn = AggFn::kSum;
  joined_sum.agg_column = {"orders", "amount"};

  // Several batches over the same two-table relation (different aggregates,
  // so the second batch misses the result cache and runs a new cube).
  (void)engine.EvaluateBatch({joined});
  (void)engine.EvaluateBatch({joined_sum});
  (void)engine.EvaluateBatch({joined, joined_sum});
  EXPECT_EQ(engine.stats().joins_built, 1u);
  EXPECT_GE(engine.stats().join_cache_hits, 1u);
  EXPECT_GE(engine.stats().cube_queries, 2u);

  // A second engine over the same database reuses the shared cache: zero
  // further builds.
  EvalEngine second(&database, EvalStrategy::kMerged);
  (void)second.EvaluateBatch({joined, joined_sum});
  EXPECT_EQ(second.stats().joins_built, 0u);
  EXPECT_GE(second.stats().join_cache_hits, 1u);
}

TEST(EvalEngineTest, RelationKeyCanonical) {
  SimpleAggregateQuery q = CountStar(
      "orders", {{{"customers", "region"}, Value(std::string("east"))}});
  SimpleAggregateQuery r;
  r.fn = AggFn::kCount;
  r.agg_column = {"customers", ""};
  r.predicates = {{{"orders", "id"}, Value(int64_t{1})}};
  // Same table set in different roles -> same relation key.
  EXPECT_EQ(EvalEngine::RelationKey(q), EvalEngine::RelationKey(r));
  EXPECT_NE(EvalEngine::RelationKey(q),
            EvalEngine::RelationKey(CountStar("orders")));
}

// ---------------------------------------------------------------------------
// Property test: on randomized databases and query batches, all strategies
// return identical results. This is the core correctness invariant behind
// Table 6 (the optimizations must not change any answer).
// ---------------------------------------------------------------------------

Database MakeRandomDatabase(Rng* rng) {
  Database database("random");
  Table t("data");
  const int num_cat_cols = 2;
  (void)t.AddColumn("metric", ValueType::kLong);
  (void)t.AddColumn("cat0", ValueType::kString);
  (void)t.AddColumn("cat1", ValueType::kString);
  (void)t.AddColumn("dim_id", ValueType::kLong);
  const char* kCats[] = {"alpha", "beta", "gamma", "delta"};
  int rows = static_cast<int>(rng->NextInt(5, 60));
  for (int r = 0; r < rows; ++r) {
    std::vector<Value> row;
    // ~10% nulls in the metric column.
    row.push_back(rng->NextBool(0.1)
                      ? Value::Null()
                      : Value(rng->NextInt(-20, 100)));
    for (int c = 0; c < num_cat_cols; ++c) {
      row.push_back(rng->NextBool(0.05)
                        ? Value::Null()
                        : Value(std::string(kCats[rng->NextBounded(4)])));
    }
    // Foreign key into the dimension table; id 9 dangles (no match).
    row.push_back(Value(rng->NextInt(1, 9)));
    (void)t.AddRow(std::move(row));
  }
  (void)database.AddTable(std::move(t));

  // Dimension table with ids 1..8; joins are N:1 with dangling rows.
  Table dim("dim");
  (void)dim.AddColumn("id", ValueType::kLong);
  (void)dim.AddColumn("group_name", ValueType::kString);
  const char* kGroups[] = {"red", "green", "blue"};
  for (int64_t id = 1; id <= 8; ++id) {
    (void)dim.AddRow({Value(id),
                      Value(std::string(kGroups[rng->NextBounded(3)]))});
  }
  (void)database.AddTable(std::move(dim));
  (void)database.AddForeignKey({"data", "dim_id"}, {"dim", "id"});
  return database;
}

SimpleAggregateQuery MakeRandomQuery(Rng* rng) {
  const char* kCats[] = {"alpha", "beta", "gamma", "delta", "unseen"};
  const char* kGroups[] = {"red", "green", "blue", "unseen"};
  SimpleAggregateQuery q;
  q.fn = AllAggFns()[rng->NextBounded(kNumAggFns)];
  if (RequiresNumericColumn(q.fn)) {
    q.agg_column = {"data", "metric"};
  } else if (q.fn == AggFn::kCountDistinct) {
    q.agg_column = rng->NextBool(0.5) ? ColumnRef{"data", "metric"}
                                      : ColumnRef{"data", "cat0"};
  } else {
    switch (rng->NextBounded(3)) {
      case 0:
        q.agg_column = {"data", ""};
        break;
      case 1:
        q.agg_column = {"data", "cat1"};
        break;
      default:
        // Star over the dimension table: joins must not leak rows into it.
        q.agg_column = {"dim", ""};
        break;
    }
  }
  int num_preds = static_cast<int>(rng->NextBounded(3));
  if (q.fn == AggFn::kConditionalProbability && num_preds == 0) num_preds = 1;
  for (int p = 0; p < num_preds; ++p) {
    // Predicates on either side of the PK-FK edge, exercising joins.
    if (rng->NextBool(0.3)) {
      q.predicates.push_back(
          {{"dim", "group_name"},
           Value(std::string(kGroups[rng->NextBounded(4)]))});
    } else {
      std::string col = rng->NextBool(0.5) ? "cat0" : "cat1";
      q.predicates.push_back(
          {{"data", col}, Value(std::string(kCats[rng->NextBounded(5)]))});
    }
  }
  return q;
}

class StrategyEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategyEquivalenceTest, AllStrategiesAgree) {
  Rng rng(GetParam());
  Database database = MakeRandomDatabase(&rng);
  std::vector<SimpleAggregateQuery> batch;
  int batch_size = static_cast<int>(rng.NextInt(1, 25));
  for (int i = 0; i < batch_size; ++i) batch.push_back(MakeRandomQuery(&rng));

  EvalEngine naive(&database, EvalStrategy::kNaive);
  EvalEngine merged(&database, EvalStrategy::kMerged);
  EvalEngine cached(&database, EvalStrategy::kMergedCached);

  auto r_naive = naive.EvaluateBatch(batch);
  auto r_merged = merged.EvaluateBatch(batch);
  auto r_cached = cached.EvaluateBatch(batch);
  // Run the cached engine twice: the second pass must serve from cache and
  // still agree.
  auto r_cached2 = cached.EvaluateBatch(batch);

  for (size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(batch[i].ToSql());
    ASSERT_EQ(r_naive[i].has_value(), r_merged[i].has_value());
    ASSERT_EQ(r_naive[i].has_value(), r_cached[i].has_value());
    ASSERT_EQ(r_naive[i].has_value(), r_cached2[i].has_value());
    if (r_naive[i].has_value()) {
      EXPECT_NEAR(*r_naive[i], *r_merged[i], 1e-9);
      EXPECT_NEAR(*r_naive[i], *r_cached[i], 1e-9);
      EXPECT_NEAR(*r_naive[i], *r_cached2[i], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomizedSeeds, StrategyEquivalenceTest,
                         ::testing::Range(uint64_t{1}, uint64_t{41}));

}  // namespace
}  // namespace db
}  // namespace aggchecker
