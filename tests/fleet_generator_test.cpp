#include "corpus/fleet_generator.h"

#include <gtest/gtest.h>

#include "claims/claim_detector.h"
#include "core/aggchecker.h"
#include "db/executor.h"
#include "util/rounding.h"

namespace aggchecker {
namespace corpus {
namespace {

/// Small enough to generate and check in milliseconds, large enough that
/// every aggregate family, predicate arity, and the error injector all get
/// exercised (~24 claims).
FleetSpec SmallSpec() {
  FleetSpec spec;
  spec.seed = 7;
  spec.num_articles = 6;
  spec.num_datasets = 2;
  spec.claims_per_article = 4;
  spec.num_dim_columns = 5;
  spec.num_measure_columns = 3;
  spec.rows_per_dataset = 400;
  spec.dim_cardinality = 8;
  spec.error_rate = 0.25;
  return spec;
}

TEST(FleetGeneratorTest, SameSpecIsByteIdentical) {
  FleetSpec spec = SmallSpec();
  FleetCorpus a = GenerateFleet(spec);
  FleetCorpus b = GenerateFleet(spec);
  EXPECT_EQ(FleetCorpusFingerprint(a), FleetCorpusFingerprint(b));
}

TEST(FleetGeneratorTest, DifferentSeedsDiffer) {
  FleetSpec spec = SmallSpec();
  FleetCorpus a = GenerateFleet(spec);
  spec.seed = 8;
  FleetCorpus b = GenerateFleet(spec);
  EXPECT_NE(FleetCorpusFingerprint(a), FleetCorpusFingerprint(b));
}

TEST(FleetGeneratorTest, ShapeMatchesSpec) {
  FleetSpec spec = SmallSpec();
  FleetCorpus corpus = GenerateFleet(spec);
  ASSERT_EQ(corpus.datasets.size(), spec.num_datasets);
  ASSERT_EQ(corpus.articles.size(), spec.num_articles);
  EXPECT_EQ(corpus.articles_dropped, 0u);
  for (const auto& db : corpus.datasets) {
    ASSERT_EQ(db->num_tables(), 1u);
    // RowId key + dimensions + measures.
    EXPECT_EQ(db->table(0).num_columns(),
              1 + spec.num_dim_columns + spec.num_measure_columns);
    EXPECT_EQ(db->table(0).num_rows(), spec.rows_per_dataset);
    EXPECT_GE(db->MaxDistinctValues(), 2u);
    EXPECT_LE(db->MaxDistinctValues(), spec.dim_cardinality);
  }
  for (size_t i = 0; i < corpus.articles.size(); ++i) {
    const FleetArticle& article = corpus.articles[i];
    EXPECT_EQ(article.dataset, i % spec.num_datasets);  // round-robin
    EXPECT_GE(article.ground_truth.size(), 1u);
    EXPECT_LE(article.ground_truth.size(), spec.claims_per_article + 2);
  }
  EXPECT_GT(corpus.TotalClaims(), 0u);
}

TEST(FleetGeneratorTest, WideSchemaCarriesSixtyFourColumns) {
  FleetSpec spec = SmallSpec();
  spec.num_articles = 1;
  spec.num_datasets = 1;
  spec.num_dim_columns = 48;
  spec.num_measure_columns = 15;
  spec.rows_per_dataset = 200;
  FleetCorpus corpus = GenerateFleet(spec);
  ASSERT_EQ(corpus.datasets.size(), 1u);
  EXPECT_EQ(corpus.datasets[0]->table(0).num_columns(), 64u);
  EXPECT_GE(corpus.articles[0].ground_truth.size(), 1u);
}

/// The detector must see exactly the generated claims, in order — the
/// alignment contract the article-scale corpus upholds, now at fleet shape.
TEST(FleetGeneratorTest, DetectorAlignsWithGroundTruth) {
  FleetCorpus corpus = GenerateFleet(SmallSpec());
  claims::ClaimDetector detector;
  for (const FleetArticle& article : corpus.articles) {
    auto detected = detector.Detect(article.document);
    ASSERT_EQ(detected.size(), article.ground_truth.size()) << article.name;
    for (size_t i = 0; i < detected.size(); ++i) {
      EXPECT_NEAR(detected[i].claimed_value(),
                  article.ground_truth[i].claimed_value, 1e-9)
          << article.name << " claim " << i;
    }
  }
}

/// Ground-truth queries re-evaluate to their recorded true values, and the
/// erroneous flag agrees with the checker's rounding semantics.
TEST(FleetGeneratorTest, GroundTruthIsConsistent) {
  FleetCorpus corpus = GenerateFleet(SmallSpec());
  size_t erroneous = 0;
  for (const FleetArticle& article : corpus.articles) {
    const db::Database& db = *corpus.datasets[article.dataset];
    db::QueryExecutor exec(&db);
    for (size_t i = 0; i < article.ground_truth.size(); ++i) {
      const GroundTruthClaim& g = article.ground_truth[i];
      auto r = exec.Execute(g.query);
      ASSERT_TRUE(r.ok()) << article.name << " claim " << i << ": "
                          << r.status().ToString();
      ASSERT_TRUE(r->has_value()) << article.name << " claim " << i;
      EXPECT_NEAR(**r, g.true_value, 1e-6) << article.name << " claim " << i;
      EXPECT_EQ(g.is_erroneous,
                !rounding::RoundsTo(g.true_value, g.claimed_value))
          << article.name << " claim " << i;
      erroneous += g.is_erroneous ? 1 : 0;
    }
  }
  // At error_rate 0.25 over ~24 claims, at least one injected error must
  // survive rounding (the generator re-corrupts until the error is visible).
  EXPECT_GT(erroneous, 0u);
}

/// The full-pipeline contract behind the fleet-smoke gate: single-article
/// Check verdicts reproduce the by-construction ground truth exactly.
TEST(FleetGeneratorTest, CheckVerdictsMatchGroundTruth) {
  FleetCorpus corpus = GenerateFleet(SmallSpec());
  for (const FleetArticle& article : corpus.articles) {
    const db::Database& db = *corpus.datasets[article.dataset];
    auto checker = core::AggChecker::Create(&db);
    ASSERT_TRUE(checker.ok()) << checker.status().ToString();
    auto report = checker->Check(article.document);
    ASSERT_TRUE(report.ok()) << article.name << ": "
                             << report.status().ToString();
    ASSERT_EQ(report->verdicts.size(), article.ground_truth.size())
        << article.name;
    for (size_t i = 0; i < report->verdicts.size(); ++i) {
      EXPECT_EQ(report->verdicts[i].likely_erroneous,
                article.ground_truth[i].is_erroneous)
          << article.name << " claim " << i << " ("
          << article.document.sentence(report->verdicts[i].claim.sentence)
                 .text
          << ")";
    }
  }
}

}  // namespace
}  // namespace corpus
}  // namespace aggchecker
