#include "claims/claim_detector.h"
#include "claims/keyword_extractor.h"
#include "claims/relevance_scorer.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"
#include "text/document.h"

namespace aggchecker {
namespace claims {
namespace {

constexpr const char* kNflArticle = R"(
<h1>The NFL's Uneven History Of Punishing Domestic Violence</h1>
<h2>Lifetime bans</h2>
<p>There were only four previous lifetime bans in my database. Three were
for repeated substance abuse, one was for gambling.</p>
<h2>History</h2>
<p>The policy started in 2014. About 12 percent of suspensions were long.</p>
)";

text::TextDocument ParseArticle() {
  auto doc = text::ParseDocument(kNflArticle);
  EXPECT_TRUE(doc.ok());
  return std::move(*doc);
}

TEST(ClaimDetectorTest, FindsWordAndDigitClaims) {
  auto doc = ParseArticle();
  ClaimDetector detector;
  auto claims = detector.Detect(doc);
  // four, three, one, 12% — the year 2014 is skipped.
  ASSERT_EQ(claims.size(), 4u);
  EXPECT_DOUBLE_EQ(claims[0].claimed_value(), 4);
  EXPECT_DOUBLE_EQ(claims[1].claimed_value(), 3);
  EXPECT_DOUBLE_EQ(claims[2].claimed_value(), 1);
  EXPECT_DOUBLE_EQ(claims[3].claimed_value(), 12);
  EXPECT_TRUE(claims[3].is_percent());
}

TEST(ClaimDetectorTest, YearsKeptWhenDisabled) {
  auto doc = ParseArticle();
  ClaimDetectorOptions options;
  options.skip_years = false;
  auto claims = ClaimDetector(options).Detect(doc);
  EXPECT_EQ(claims.size(), 5u);
}

TEST(ClaimDetectorTest, MaxValueCap) {
  auto doc = *text::ParseDocument("We sold 1500000 units, or 85 percent.");
  ClaimDetectorOptions options;
  options.max_value = 10000;
  auto claims = ClaimDetector(options).Detect(doc);
  // The large value is dropped; the percent survives the cap.
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_TRUE(claims[0].is_percent());
}

TEST(ClaimDetectorTest, ClaimIdsUniquePerSentence) {
  auto doc = ParseArticle();
  auto claims = ClaimDetector().Detect(doc);
  // "three" and "one" share a sentence: same prefix, increasing counter.
  EXPECT_EQ(claims[1].sentence, claims[2].sentence);
  EXPECT_EQ(claims[1].id, "s1#0");
  EXPECT_EQ(claims[2].id, "s1#1");
  EXPECT_NE(claims[0].id, claims[1].id);
}

class KeywordExtractorTest : public ::testing::Test {
 protected:
  KeywordExtractorTest() : doc_(ParseArticle()) {
    claims_ = ClaimDetector().Detect(doc_);
  }

  static double WeightOf(
      const std::vector<ir::InvertedIndex::TermWeight>& keywords,
      const std::string& word) {
    for (const auto& [w, weight] : keywords) {
      if (w == word) return weight;
    }
    return 0.0;
  }

  text::TextDocument doc_;
  std::vector<Claim> claims_;
};

TEST_F(KeywordExtractorTest, ClaimSentenceKeywordsWeighted) {
  KeywordExtractor extractor(KeywordContextOptions::ClaimSentenceOnly());
  // Claim 'one' (gambling).
  auto keywords = extractor.Extract(doc_, claims_[2]);
  double w_gambling = WeightOf(keywords, "gambling");
  double w_substance = WeightOf(keywords, "substance");
  EXPECT_GT(w_gambling, 0.0);
  EXPECT_GT(w_gambling, w_substance);  // Example 3's separation property

  // And for claim 'three' it flips.
  auto keywords3 = extractor.Extract(doc_, claims_[1]);
  EXPECT_GT(WeightOf(keywords3, "substance"),
            WeightOf(keywords3, "gambling"));
}

TEST_F(KeywordExtractorTest, ClaimValueItselfExcluded) {
  KeywordExtractor extractor(KeywordContextOptions::ClaimSentenceOnly());
  auto keywords = extractor.Extract(doc_, claims_[2]);
  EXPECT_EQ(WeightOf(keywords, "one"), 0.0);
}

TEST_F(KeywordExtractorTest, PreviousSentenceAddsContext) {
  // The decisive "lifetime bans" context for claims three/one lives in the
  // previous sentence (Example 3).
  KeywordContextOptions options = KeywordContextOptions::ClaimSentenceOnly();
  KeywordExtractor without(options);
  EXPECT_EQ(WeightOf(without.Extract(doc_, claims_[2]), "lifetime"), 0.0);

  options.previous_sentence = true;
  KeywordExtractor with(options);
  EXPECT_GT(WeightOf(with.Extract(doc_, claims_[2]), "lifetime"), 0.0);
}

TEST_F(KeywordExtractorTest, HeadlinesAddContext) {
  KeywordContextOptions options = KeywordContextOptions::ClaimSentenceOnly();
  options.headlines = true;
  KeywordExtractor extractor(options);
  auto keywords = extractor.Extract(doc_, claims_[0]);
  EXPECT_GT(WeightOf(keywords, "lifetime"), 0.0);   // section headline
  EXPECT_GT(WeightOf(keywords, "violence"), 0.0);   // document title
}

TEST_F(KeywordExtractorTest, SynonymsExpandAtDiscount) {
  KeywordContextOptions options = KeywordContextOptions::ClaimSentenceOnly();
  options.previous_sentence = true;
  options.synonyms = true;
  KeywordExtractor extractor(options);
  auto keywords = extractor.Extract(doc_, claims_[2]);
  // "lifetime" (from the previous sentence) expands to "indef".
  double w_lifetime = WeightOf(keywords, "lifetime");
  double w_indef = WeightOf(keywords, "indef");
  EXPECT_GT(w_indef, 0.0);
  EXPECT_LT(w_indef, w_lifetime + 1e-12);
}

TEST_F(KeywordExtractorTest, ContextNeverRemovesKeywords) {
  // Property: enabling more context only adds keywords (or raises weights).
  KeywordExtractor minimal(KeywordContextOptions::ClaimSentenceOnly());
  KeywordExtractor full((KeywordContextOptions()));
  for (const Claim& claim : claims_) {
    auto base = minimal.Extract(doc_, claim);
    auto extended = full.Extract(doc_, claim);
    for (const auto& [word, weight] : base) {
      EXPECT_GE(WeightOf(extended, word), weight) << word;
    }
  }
}

TEST(RelevanceScorerTest, EndToEndScoresFragments) {
  auto doc = ParseArticle();
  auto claims = ClaimDetector().Detect(doc);
  auto database = testing_fixtures::MakeNflDatabase();
  auto catalog = fragments::FragmentCatalog::Build(database);
  ASSERT_TRUE(catalog.ok());
  RelevanceScorer scorer(&*catalog, KeywordExtractor(), 20);
  auto relevance = scorer.ScoreAll(doc, claims);
  ASSERT_EQ(relevance.size(), claims.size());

  // For claim 'one', the gambling predicate fragment must rank highly.
  const auto& rel = relevance[2];
  ASSERT_FALSE(rel.predicates.empty());
  bool gambling_found = false;
  for (const auto& hit : rel.predicates) {
    const auto& frag = catalog->fragment(fragments::FragmentType::kPredicate,
                                         hit.fragment_index);
    if (frag.value.ToString() == "gambling") gambling_found = true;
  }
  EXPECT_TRUE(gambling_found);
  // Functions are always scored over the full set.
  EXPECT_FALSE(rel.functions.empty());
}

}  // namespace
}  // namespace claims
}  // namespace aggchecker
