#include "ir/tokenizer.h"

#include <gtest/gtest.h>

namespace aggchecker {
namespace ir {
namespace {

TEST(TokenizerTest, BasicWordsLowercased) {
  EXPECT_EQ(Tokenize("Hello World"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, PunctuationSeparates) {
  EXPECT_EQ(Tokenize("bans - three were for abuse, one for gambling."),
            (std::vector<std::string>{"bans", "three", "were", "for",
                                      "abuse", "one", "for", "gambling"}));
}

TEST(TokenizerTest, ApostropheKept) {
  EXPECT_EQ(Tokenize("don't stop"),
            (std::vector<std::string>{"don't", "stop"}));
}

TEST(TokenizerTest, DecimalAndThousandsKeptTogether) {
  EXPECT_EQ(Tokenize("13.6 percent of 1,200 responses"),
            (std::vector<std::string>{"13.6", "percent", "of", "1,200",
                                      "responses"}));
}

TEST(TokenizerTest, CommaBetweenWordsSeparates) {
  EXPECT_EQ(Tokenize("alpha,beta"),
            (std::vector<std::string>{"alpha", "beta"}));
}

TEST(TokenizerTest, OffsetsPointIntoSource) {
  std::string s = "The 41 percent";
  auto tokens = TokenizeWithOffsets(s);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "41");
  EXPECT_EQ(s.substr(tokens[1].offset, 2), "41");
  EXPECT_EQ(tokens[2].offset, 7u);
}

TEST(TokenizerTest, EmptyAndPunctOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... --- !!!").empty());
}

TEST(TokenizerTest, IsNumericToken) {
  EXPECT_TRUE(IsNumericToken("42"));
  EXPECT_TRUE(IsNumericToken("13.6"));
  EXPECT_TRUE(IsNumericToken("1,200"));
  EXPECT_TRUE(IsNumericToken("-7"));
  EXPECT_FALSE(IsNumericToken("abc"));
  EXPECT_FALSE(IsNumericToken("12abc"));
  EXPECT_FALSE(IsNumericToken("1.2.3"));
  EXPECT_FALSE(IsNumericToken(""));
  EXPECT_FALSE(IsNumericToken("-"));
}

TEST(TokenizerTest, StopWords) {
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("of"));
  EXPECT_FALSE(IsStopWord("gambling"));
  EXPECT_FALSE(IsStopWord("percent"));
}

}  // namespace
}  // namespace ir
}  // namespace aggchecker
