#include "corpus/corpus.h"

#include <gtest/gtest.h>

#include "claims/claim_detector.h"
#include "corpus/embedded_articles.h"
#include "corpus/metrics.h"
#include "db/executor.h"
#include "util/rounding.h"

namespace aggchecker {
namespace corpus {
namespace {

/// Detector-level alignment: claim count and claimed values must line up
/// with ground truth for every corpus case (the invariant all benchmark
/// metrics rely on).
void ExpectDetectorAlignment(const CorpusCase& c) {
  claims::ClaimDetector detector;
  auto detected = detector.Detect(c.document);
  ASSERT_EQ(detected.size(), c.ground_truth.size()) << c.name;
  for (size_t i = 0; i < detected.size(); ++i) {
    EXPECT_NEAR(detected[i].claimed_value(), c.ground_truth[i].claimed_value,
                1e-9)
        << c.name << " claim " << i;
  }
}

/// Ground-truth queries must be valid and their recorded true values must
/// re-evaluate identically.
void ExpectGroundTruthConsistency(const CorpusCase& c) {
  db::QueryExecutor exec(&c.database);
  for (size_t i = 0; i < c.ground_truth.size(); ++i) {
    const auto& g = c.ground_truth[i];
    auto r = exec.Execute(g.query);
    ASSERT_TRUE(r.ok()) << c.name << " claim " << i << ": "
                        << r.status().ToString();
    ASSERT_TRUE(r->has_value()) << c.name << " claim " << i;
    EXPECT_NEAR(**r, g.true_value, 1e-6) << c.name << " claim " << i;
    // The erroneous flag must agree with the rounding semantics.
    EXPECT_EQ(g.is_erroneous,
              !rounding::RoundsTo(g.true_value, g.claimed_value))
        << c.name << " claim " << i;
  }
}

TEST(EmbeddedArticlesTest, NflCaseAligned) {
  auto c = MakeNflCase();
  EXPECT_EQ(c.ground_truth.size(), 11u);
  EXPECT_EQ(c.NumErroneous(), 2u);
  ExpectDetectorAlignment(c);
  ExpectGroundTruthConsistency(c);
}

TEST(EmbeddedArticlesTest, EtiquetteCaseAligned) {
  auto c = MakeEtiquetteCase();
  EXPECT_EQ(c.ground_truth.size(), 8u);
  EXPECT_EQ(c.NumErroneous(), 1u);
  ExpectDetectorAlignment(c);
  ExpectGroundTruthConsistency(c);
}

TEST(EmbeddedArticlesTest, DeveloperSurveyReproducesTable9Error) {
  auto c = MakeDeveloperSurveyCase();
  EXPECT_EQ(c.ground_truth.size(), 8u);
  ExpectDetectorAlignment(c);
  ExpectGroundTruthConsistency(c);
  // The self-taught claim: true 13.6%, claimed 13% — erroneous.
  const auto& self_taught = c.ground_truth[2];
  EXPECT_NEAR(self_taught.true_value, 13.6, 0.01);
  EXPECT_TRUE(self_taught.is_erroneous);
}

class GeneratedCaseTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GeneratedCaseTest, AlignedAndConsistent) {
  GeneratorOptions options;
  auto c = GenerateCase(GetParam(), options);
  ASSERT_GE(c.ground_truth.size(), 3u) << c.name;
  ExpectDetectorAlignment(c);
  ExpectGroundTruthConsistency(c);
}

INSTANTIATE_TEST_SUITE_P(AllGeneratedCases, GeneratedCaseTest,
                         ::testing::Range(size_t{0}, size_t{50}));

TEST(GeneratorTest, DeterministicInSeed) {
  GeneratorOptions options;
  auto a = GenerateCase(7, options);
  auto b = GenerateCase(7, options);
  ASSERT_EQ(a.ground_truth.size(), b.ground_truth.size());
  for (size_t i = 0; i < a.ground_truth.size(); ++i) {
    EXPECT_EQ(a.ground_truth[i].query.CanonicalKey(),
              b.ground_truth[i].query.CanonicalKey());
    EXPECT_DOUBLE_EQ(a.ground_truth[i].claimed_value,
                     b.ground_truth[i].claimed_value);
  }
  // A different seed changes the case.
  GeneratorOptions other;
  other.seed = 137;
  auto d = GenerateCase(7, other);
  bool differs = d.ground_truth.size() != a.ground_truth.size();
  for (size_t i = 0; !differs && i < a.ground_truth.size(); ++i) {
    differs = !(a.ground_truth[i].query == d.ground_truth[i].query) ||
              a.ground_truth[i].claimed_value !=
                  d.ground_truth[i].claimed_value;
  }
  EXPECT_TRUE(differs);
}

TEST(FullCorpusTest, ShapeMatchesPaper) {
  auto corpus = FullCorpus();
  EXPECT_EQ(corpus.size(), 53u);
  auto stats = ComputeStatistics(corpus);
  // ~392 claims in the paper; our generator lands in the same ballpark.
  EXPECT_GT(stats.num_claims, 250u);
  EXPECT_LT(stats.num_claims, 600u);
  // ~12% of claims erroneous, 17/53 cases with at least one error.
  double error_rate = static_cast<double>(stats.num_erroneous) /
                      static_cast<double>(stats.num_claims);
  EXPECT_GT(error_rate, 0.05);
  EXPECT_LT(error_rate, 0.25);
  EXPECT_GT(stats.cases_with_errors, 8u);
  // Predicate mix near 17/61/23 (Figure 9(c)).
  EXPECT_GT(stats.one_pred_share, stats.zero_pred_share);
  EXPECT_GT(stats.one_pred_share, stats.two_pred_share);
  // Theme concentration (Figure 9(b)): top-3 characteristics cover most
  // claims per document.
  EXPECT_GT(stats.topn_function_coverage[2], 75.0);
  EXPECT_GT(stats.topn_predicate_coverage[2], 60.0);
  // Coverage curves are monotone.
  for (size_t n = 1; n < stats.topn_column_coverage.size(); ++n) {
    EXPECT_GE(stats.topn_column_coverage[n],
              stats.topn_column_coverage[n - 1]);
  }
}

TEST(FullCorpusTest, StudyArticleSelection) {
  auto corpus = FullCorpus();
  auto picks = StudyArticleIndices(corpus);
  ASSERT_EQ(picks.size(), 6u);
  EXPECT_GT(corpus[picks[0]].ground_truth.size(), 15u);
  EXPECT_GT(corpus[picks[1]].ground_truth.size(), 15u);
  for (size_t i = 2; i < 6; ++i) {
    EXPECT_GE(corpus[picks[i]].ground_truth.size(), 5u);
    EXPECT_LE(corpus[picks[i]].ground_truth.size(), 10u);
  }
}

TEST(MetricsTest, ErrorDetectionMath) {
  ErrorDetectionMetrics m;
  m.true_positives = 3;
  m.false_positives = 1;
  m.false_negatives = 1;
  EXPECT_DOUBLE_EQ(m.Precision(), 0.75);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.75);
  EXPECT_DOUBLE_EQ(m.F1(), 0.75);

  ErrorDetectionMetrics empty;
  EXPECT_DOUBLE_EQ(empty.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Recall(), 1.0);  // no erroneous claims to find
  ErrorDetectionMetrics merged = m;
  merged.Merge(m);
  EXPECT_EQ(merged.true_positives, 6u);
}

TEST(MetricsTest, CoverageMergeAndAccessors) {
  CoverageMetrics a(5), b(5);
  a.total = 2;
  a.hits[0] = 1;
  a.hits[4] = 2;
  b.total = 2;
  b.hits[0] = 2;
  b.hits[4] = 2;
  a.Merge(b);
  EXPECT_EQ(a.total, 4u);
  EXPECT_DOUBLE_EQ(a.TopK(1), 75.0);
  EXPECT_DOUBLE_EQ(a.TopK(5), 100.0);
}

}  // namespace
}  // namespace corpus
}  // namespace aggchecker
