#include "baselines/claimbuster_fm.h"
#include "baselines/margot.h"
#include "baselines/nalir.h"

#include <gtest/gtest.h>

#include "claims/claim_detector.h"
#include "corpus/embedded_articles.h"

namespace aggchecker {
namespace baselines {
namespace {

TEST(ClaimBusterFmTest, RepositoryBuilt) {
  ClaimBusterFm fm(ClaimBusterFm::Aggregation::kMax);
  EXPECT_GE(fm.repository_size(), 30u);
}

TEST(ClaimBusterFmTest, ChecksEveryClaim) {
  auto c = corpus::MakeNflCase();
  auto detected = claims::ClaimDetector().Detect(c.document);
  ClaimBusterFm fm(ClaimBusterFm::Aggregation::kMax);
  auto flags = fm.CheckDocument(c.document, detected);
  EXPECT_EQ(flags.size(), detected.size());
}

TEST(ClaimBusterFmTest, LongTailClaimsMatchSpuriouslyOrNotAtAll) {
  // The structural point of the baseline: its verdicts on data-set-specific
  // claims carry no signal, so agreement with ground truth is near chance.
  auto c = corpus::MakeNflCase();
  auto detected = claims::ClaimDetector().Detect(c.document);
  ClaimBusterFm max_fm(ClaimBusterFm::Aggregation::kMax);
  ClaimBusterFm mv_fm(ClaimBusterFm::Aggregation::kMajorityVote);
  auto max_flags = max_fm.CheckDocument(c.document, detected);
  auto mv_flags = mv_fm.CheckDocument(c.document, detected);
  // Both exist; the two aggregations may differ on some claims.
  EXPECT_EQ(max_flags.size(), mv_flags.size());
}

TEST(NalirTest, TranslatesOnlyExplicitSingleClaimSentences) {
  auto c = corpus::MakeNflCase();
  auto detected = claims::ClaimDetector().Detect(c.document);
  auto catalog = fragments::FragmentCatalog::Build(c.database);
  ASSERT_TRUE(catalog.ok());
  NalirBaseline nalir(&c.database, &*catalog);
  size_t translated = 0;
  for (const auto& claim : detected) {
    auto outcome = nalir.CheckClaim(c.document, claim);
    if (outcome.translated) ++translated;
    // Question generation must fail on the two-claim sentence
    // ("Three were ... one was for gambling").
    if (claim.id == "s1#0" || claim.id == "s1#1") {
      EXPECT_FALSE(outcome.question_generated) << claim.id;
    }
  }
  // Only a minority of claims translate — the paper's bottleneck.
  EXPECT_LT(translated, detected.size());
  EXPECT_EQ(nalir.stats().attempts, detected.size());
  EXPECT_LE(nalir.stats().single_values, nalir.stats().translations);
}

TEST(NalirTest, ExplicitCountSentenceTranslates) {
  auto c = corpus::MakeNflCase();
  auto catalog = fragments::FragmentCatalog::Build(c.database);
  NalirBaseline nalir(&c.database, &*catalog);
  // Build a toy document with an explicit, short, single-claim sentence
  // whose value token matches a database literal exactly.
  auto doc = text::ParseDocument(
      "We counted 6 suspensions where the category was gambling.");
  auto detected = claims::ClaimDetector().Detect(*doc);
  ASSERT_EQ(detected.size(), 1u);
  auto outcome = nalir.CheckClaim(*doc, detected[0]);
  EXPECT_TRUE(outcome.question_generated);
  EXPECT_TRUE(outcome.translated);
  ASSERT_TRUE(outcome.single_value);
  // Count(*) WHERE Category='gambling' = 1, claimed 6 -> flagged.
  EXPECT_DOUBLE_EQ(*outcome.result, 1.0);
  EXPECT_TRUE(outcome.flagged_erroneous);
}

TEST(NalirTest, NoCueWordNoTranslation) {
  auto c = corpus::MakeNflCase();
  auto catalog = fragments::FragmentCatalog::Build(c.database);
  NalirBaseline nalir(&c.database, &*catalog);
  auto doc = text::ParseDocument("There were 4 gambling suspensions.");
  auto detected = claims::ClaimDetector().Detect(*doc);
  ASSERT_EQ(detected.size(), 1u);
  auto outcome = nalir.CheckClaim(*doc, detected[0]);
  EXPECT_TRUE(outcome.question_generated);
  EXPECT_FALSE(outcome.translated);
}

TEST(MargotTest, CountsArgumentativeSentences) {
  auto c = corpus::MakeEtiquetteCase();
  size_t count = CountArgumentativeClaims(c.document);
  EXPECT_GT(count, 0u);
  EXPECT_LE(count, c.document.sentences().size());
}

}  // namespace
}  // namespace baselines
}  // namespace aggchecker
