#include "util/resource_governor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace aggchecker {
namespace {

TEST(ResourceGovernorTest, DefaultLimitsAreUnlimited) {
  GovernorLimits limits;
  EXPECT_TRUE(limits.unlimited());
  limits.max_row_scans = 1;
  EXPECT_FALSE(limits.unlimited());
}

TEST(ResourceGovernorTest, UnlimitedGovernorNeverTrips) {
  ResourceGovernor governor;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(governor.ChargeRows(100000).ok());
  }
  EXPECT_TRUE(governor.ChargeCubeGroups(1 << 20).ok());
  EXPECT_TRUE(governor.CheckPoint().ok());
  EXPECT_FALSE(governor.exhausted());
  GovernorUsage usage = governor.usage();
  EXPECT_EQ(usage.rows_charged, 100u * 100000u);
  EXPECT_EQ(usage.cube_groups_charged, uint64_t{1} << 20);
  EXPECT_FALSE(usage.exhausted);
  EXPECT_EQ(usage.stop_code, StatusCode::kOk);
}

TEST(ResourceGovernorTest, RowBudgetTrips) {
  GovernorLimits limits;
  limits.max_row_scans = 10000;
  ResourceGovernor governor(limits);
  Status status = Status::OK();
  uint64_t charged = 0;
  while (status.ok() && charged < 10 * limits.max_row_scans) {
    status = governor.ChargeRows(1000);
    charged += 1000;
  }
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kBudgetExhausted);
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_TRUE(governor.exhausted());
  // Amortized inspection: the overshoot is bounded by the check interval.
  EXPECT_LE(governor.usage().rows_charged,
            limits.max_row_scans + ResourceGovernor::kCheckIntervalRows);
}

TEST(ResourceGovernorTest, TrippedStateIsSticky) {
  GovernorLimits limits;
  limits.max_row_scans = 1;
  ResourceGovernor governor(limits);
  ASSERT_FALSE(governor.ChargeRows(ResourceGovernor::kCheckIntervalRows).ok());
  // Every later charge keeps failing with the same code, even tiny ones.
  EXPECT_EQ(governor.ChargeRows(1).code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ(governor.ChargeCubeGroups(1).code(),
            StatusCode::kBudgetExhausted);
  EXPECT_EQ(governor.CheckPoint().code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ(governor.usage().stop_code, StatusCode::kBudgetExhausted);
}

TEST(ResourceGovernorTest, SmallChargesAreAmortized) {
  GovernorLimits limits;
  limits.max_row_scans = 10;
  ResourceGovernor governor(limits);
  // Over budget, but below the inspection interval: not yet noticed...
  EXPECT_TRUE(governor.ChargeRows(100).ok());
  // ...until a forced checkpoint inspects the limits.
  EXPECT_EQ(governor.CheckPoint().code(), StatusCode::kBudgetExhausted);
}

TEST(ResourceGovernorTest, CubeGroupBudgetTripsImmediately) {
  // A limit of N trips once N units have been charged (>=, not >): cube
  // charges are inspected on every call, with no amortization window.
  GovernorLimits limits;
  limits.max_cube_groups = 100;
  ResourceGovernor governor(limits);
  EXPECT_TRUE(governor.ChargeCubeGroups(99).ok());
  Status status = governor.ChargeCubeGroups(1);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kBudgetExhausted);
}

TEST(ResourceGovernorTest, MemoryBudgetTripsImmediately) {
  // Like cube groups, modeled-byte charges are structural points inspected
  // on every call: a limit of N trips once N bytes have been charged.
  GovernorLimits limits;
  limits.max_memory_bytes = 1 << 20;
  EXPECT_FALSE(limits.unlimited());
  ResourceGovernor governor(limits);
  EXPECT_TRUE(governor.ChargeMemoryBytes((1 << 20) - 1).ok());
  Status status = governor.ChargeMemoryBytes(1);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kBudgetExhausted);
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_NE(status.message().find("memory budget"), std::string::npos);
  EXPECT_EQ(governor.usage().memory_bytes_charged, uint64_t{1} << 20);
  // Sticky, like every other limit.
  EXPECT_EQ(governor.ChargeRows(1).code(), StatusCode::kBudgetExhausted);
}

TEST(ResourceGovernorTest, MemoryChargesFlowThroughShards) {
  GovernorLimits limits;
  limits.max_memory_bytes = 1000;
  ResourceGovernor governor(limits);
  {
    ResourceGovernor::Shard shard(&governor);
    // Memory charges flush pending rows first, so row totals are current
    // at trip time.
    EXPECT_TRUE(shard.ChargeRows(7).ok());
    EXPECT_TRUE(shard.ChargeMemoryBytes(999).ok());
    EXPECT_EQ(governor.usage().rows_charged, 7u);
    EXPECT_FALSE(shard.ChargeMemoryBytes(1).ok());
  }
  EXPECT_TRUE(governor.exhausted());
  EXPECT_EQ(governor.usage().memory_bytes_charged, 1000u);
  governor.Reset();
  EXPECT_EQ(governor.usage().memory_bytes_charged, 0u);
  EXPECT_FALSE(governor.exhausted());
}

TEST(ResourceGovernorTest, DeadlineTrips) {
  GovernorLimits limits;
  limits.deadline_seconds = 1e-6;
  ResourceGovernor governor(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  Status status = governor.CheckPoint();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_EQ(governor.usage().stop_code, StatusCode::kDeadlineExceeded);
}

TEST(ResourceGovernorTest, ResetClearsTripAndCountersAndRestartsClock) {
  GovernorLimits limits;
  limits.max_row_scans = 100;
  ResourceGovernor governor(limits);
  ASSERT_FALSE(governor.ChargeRows(ResourceGovernor::kCheckIntervalRows).ok());
  ASSERT_TRUE(governor.exhausted());
  governor.Reset();
  EXPECT_FALSE(governor.exhausted());
  EXPECT_EQ(governor.usage().rows_charged, 0u);
  EXPECT_EQ(governor.usage().stop_code, StatusCode::kOk);
  EXPECT_TRUE(governor.ChargeRows(10).ok());
}

TEST(ResourceGovernorTest, UsageCountsCheckpoints) {
  ResourceGovernor governor;
  EXPECT_TRUE(governor.CheckPoint().ok());
  EXPECT_TRUE(governor.CheckPoint().ok());
  EXPECT_EQ(governor.usage().checkpoints, 2u);
}

}  // namespace
}  // namespace aggchecker
