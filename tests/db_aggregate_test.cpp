#include "db/aggregate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace aggchecker {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kMaxD = std::numeric_limits<double>::max();

TEST(AggregateTest, SumOfFiniteValues) {
  db::Aggregator agg(db::AggFn::kSum);
  agg.Add(db::Value(1.5));
  agg.Add(db::Value(int64_t{2}));
  auto r = agg.Finish();
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 3.5);
}

TEST(AggregateTest, SumWithNanIsUndefined) {
  db::Aggregator agg(db::AggFn::kSum);
  agg.Add(db::Value(1.0));
  agg.Add(db::Value(kNan));
  agg.Add(db::Value(2.0));
  EXPECT_FALSE(agg.Finish().has_value());
}

TEST(AggregateTest, SumWithInfinityIsUndefined) {
  db::Aggregator agg(db::AggFn::kSum);
  agg.Add(db::Value(kInf));
  EXPECT_FALSE(agg.Finish().has_value());
}

TEST(AggregateTest, SumOverflowToInfinityIsUndefined) {
  // Both inputs are finite but the running sum saturates to +Inf; a verdict
  // decided by IEEE saturation would be wrong, so the result is undefined.
  db::Aggregator agg(db::AggFn::kSum);
  agg.Add(db::Value(kMaxD));
  agg.Add(db::Value(kMaxD));
  EXPECT_FALSE(agg.Finish().has_value());
}

TEST(AggregateTest, AvgWithNanIsUndefined) {
  db::Aggregator agg(db::AggFn::kAvg);
  agg.Add(db::Value(1.0));
  agg.Add(db::Value(-kNan));
  EXPECT_FALSE(agg.Finish().has_value());
}

TEST(AggregateTest, AvgOfFiniteValuesUnaffected) {
  db::Aggregator agg(db::AggFn::kAvg);
  agg.Add(db::Value(2.0));
  agg.Add(db::Value(4.0));
  auto r = agg.Finish();
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 3.0);
}

TEST(AggregateTest, MinMaxWithNonFiniteIsUndefined) {
  db::Aggregator mn(db::AggFn::kMin);
  mn.Add(db::Value(3.0));
  mn.Add(db::Value(-kInf));
  EXPECT_FALSE(mn.Finish().has_value());

  db::Aggregator mx(db::AggFn::kMax);
  mx.Add(db::Value(kNan));
  mx.Add(db::Value(3.0));
  EXPECT_FALSE(mx.Finish().has_value());
}

TEST(AggregateTest, CountIgnoresNonFinite) {
  // Count counts rows, not magnitudes: poison does not apply.
  db::Aggregator agg(db::AggFn::kCount);
  agg.Add(db::Value(kNan));
  agg.Add(db::Value(1.0));
  auto r = agg.Finish();
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 2.0);
}

TEST(AggregateTest, SumOfZeroRowsIsNull) {
  db::Aggregator agg(db::AggFn::kSum);
  EXPECT_FALSE(agg.Finish().has_value());
}

TEST(AggregateTest, NullsAreIgnored) {
  db::Aggregator agg(db::AggFn::kSum);
  agg.Add(db::Value::Null());
  agg.Add(db::Value(5.0));
  auto r = agg.Finish();
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 5.0);
}

}  // namespace
}  // namespace aggchecker
