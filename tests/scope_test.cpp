#include "model/scope.h"

#include <gtest/gtest.h>

#include "core/aggchecker.h"
#include "corpus/generator.h"
#include "test_fixtures.h"

namespace aggchecker {
namespace model {
namespace {

TEST(PickScopeTest, DisabledUsesMaxBudget) {
  auto database = testing_fixtures::MakeNflDatabase();
  ModelOptions options;
  options.adaptive_scope = false;
  auto budget = PickScope(database, 10, options);
  EXPECT_EQ(budget.eval_per_claim, options.max_eval_per_claim);
}

TEST(PickScopeTest, SmallDataGetsFullBudget) {
  auto database = testing_fixtures::MakeNflDatabase();  // 10 rows
  ModelOptions options;
  options.adaptive_scope = true;
  auto budget = PickScope(database, 10, options);
  EXPECT_EQ(budget.eval_per_claim, options.max_eval_per_claim);
}

TEST(PickScopeTest, LargeDataShrinksScope) {
  corpus::GeneratorOptions gen;
  gen.row_scale = 400;  // tens of thousands of rows
  auto big = corpus::GenerateCase(3, gen);
  ModelOptions options;
  options.adaptive_scope = true;
  size_t claims = 10;
  auto budget = PickScope(big.database, claims, options);
  EXPECT_LT(budget.eval_per_claim, options.max_eval_per_claim);
  EXPECT_GE(budget.eval_per_claim, options.min_eval_per_claim);
  // The estimate respects the target up to clamping.
  if (budget.eval_per_claim > options.min_eval_per_claim) {
    EXPECT_LE(budget.estimated_row_scans, options.target_row_scans * 1.5);
  }
}

TEST(PickScopeTest, MoreClaimsSplitTheBudget) {
  corpus::GeneratorOptions gen;
  gen.row_scale = 100;
  auto big = corpus::GenerateCase(3, gen);
  ModelOptions options;
  options.adaptive_scope = true;
  auto few = PickScope(big.database, 4, options);
  auto many = PickScope(big.database, 64, options);
  EXPECT_GE(few.eval_per_claim, many.eval_per_claim);
}

TEST(PickScopeTest, ClampsToMinimum) {
  corpus::GeneratorOptions gen;
  gen.row_scale = 2000;
  auto huge = corpus::GenerateCase(0, gen);
  ModelOptions options;
  options.adaptive_scope = true;
  auto budget = PickScope(huge.database, 100, options);
  EXPECT_EQ(budget.eval_per_claim, options.min_eval_per_claim);
}

TEST(PickScopeTest, AdaptiveCheckStillWorks) {
  // End-to-end with adaptive scope on a normal case: quality holds.
  auto c = corpus::GenerateCase(5, corpus::GeneratorOptions{});
  core::CheckOptions options;
  options.model.adaptive_scope = true;
  auto checker = core::AggChecker::Create(&c.database, options);
  ASSERT_TRUE(checker.ok());
  auto report = checker->Check(c.document);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdicts.size(), c.ground_truth.size());
}

}  // namespace
}  // namespace model
}  // namespace aggchecker
