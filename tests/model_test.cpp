#include "model/translator.h"

#include <gtest/gtest.h>

#include "claims/claim_detector.h"
#include "model/priors.h"
#include "test_fixtures.h"
#include "text/document.h"

namespace aggchecker {
namespace model {
namespace {

using testing_fixtures::MakeNflDatabase;

constexpr const char* kNflArticle = R"(
<h1>The NFL's Uneven History Of Punishing Domestic Violence</h1>
<h2>Lifetime bans</h2>
<p>There were only four previous lifetime bans in my database. Three were
for repeated substance abuse offenses, one was for gambling.</p>
)";

struct Pipeline {
  Pipeline() : database(MakeNflDatabase()) {
    auto parsed = text::ParseDocument(kNflArticle);
    doc = std::move(*parsed);
    detected = claims::ClaimDetector().Detect(doc);
    auto built = fragments::FragmentCatalog::Build(database);
    catalog = std::make_unique<fragments::FragmentCatalog>(std::move(*built));
    claims::RelevanceScorer scorer(catalog.get(), claims::KeywordExtractor(),
                                   20);
    relevance = scorer.ScoreAll(doc, detected);
  }

  db::Database database;
  text::TextDocument doc;
  std::vector<claims::Claim> detected;
  std::unique_ptr<fragments::FragmentCatalog> catalog;
  std::vector<claims::ClaimRelevance> relevance;
};

TEST(PriorsTest, UniformSumsToOne) {
  Pipeline p;
  Priors priors = Priors::Uniform(*p.catalog);
  double fn_sum = 0;
  for (db::AggFn fn : db::AllAggFns()) fn_sum += priors.fn_prior(fn);
  EXPECT_NEAR(fn_sum, 1.0, 1e-9);
  double col_sum = 0;
  for (size_t i = 0; i < priors.num_agg_col_components(); ++i) {
    col_sum += priors.agg_col_prior(static_cast<int>(i));
  }
  EXPECT_NEAR(col_sum, 1.0, 1e-9);
}

TEST(PriorsTest, MaximizationReflectsMlQueries) {
  Pipeline p;
  // Three ML queries, all Count(*) with a restriction on Games.
  std::vector<db::SimpleAggregateQuery> ml;
  for (int i = 0; i < 3; ++i) {
    ml.push_back(testing_fixtures::CountStar(
        "nflsuspensions",
        {{{"nflsuspensions", "Games"}, db::Value(std::string("indef"))}}));
  }
  Priors priors = Priors::FromMlQueries(ml, *p.catalog);
  // Count dominates the function prior (Table 2's convergence pattern).
  for (db::AggFn fn : db::AllAggFns()) {
    if (fn != db::AggFn::kCount) {
      EXPECT_GT(priors.fn_prior(db::AggFn::kCount), priors.fn_prior(fn));
    }
  }
  // Restriction prior on Games beats the other columns.
  int games = p.catalog->PredicateColumnIndex({"nflsuspensions", "Games"});
  int team = p.catalog->PredicateColumnIndex({"nflsuspensions", "Team"});
  EXPECT_GT(priors.restrict_prior(games), priors.restrict_prior(team));
}

TEST(PriorsTest, QueryPriorMultipliesComponents) {
  Pipeline p;
  Priors priors = Priors::Uniform(*p.catalog);
  auto q0 = testing_fixtures::CountStar("nflsuspensions");
  auto q1 = testing_fixtures::CountStar(
      "nflsuspensions",
      {{{"nflsuspensions", "Games"}, db::Value(std::string("indef"))}});
  // Adding a restriction multiplies in a factor < 1.
  EXPECT_LT(priors.QueryPrior(q1, *p.catalog),
            priors.QueryPrior(q0, *p.catalog));
}

TEST(PriorsTest, MaxDeltaZeroForSelf) {
  Pipeline p;
  Priors priors = Priors::Uniform(*p.catalog);
  EXPECT_DOUBLE_EQ(priors.MaxDelta(priors), 0.0);
}

TEST(CandidateSpaceTest, BuildsNonTrivialSpace) {
  Pipeline p;
  ModelOptions options;
  auto space = CandidateSpace::Build(p.database, *p.catalog, p.relevance[2],
                                     options);
  EXPECT_EQ(space.functions().size(), 8u);
  EXPECT_GE(space.columns().size(), 1u);
  EXPECT_GE(space.subsets().size(), 2u);  // at least empty + one predicate
  // 8 functions x >=1 column x >=8 subsets on this small fixture.
  EXPECT_GT(space.TotalCandidates(), 50u);
}

TEST(CandidateSpaceTest, ValidityRules) {
  Pipeline p;
  ModelOptions options;
  auto space = CandidateSpace::Build(p.database, *p.catalog, p.relevance[2],
                                     options);
  // Find indices: a star column and the CondProb function.
  size_t star_col = space.columns().size();
  for (size_t c = 0; c < space.columns().size(); ++c) {
    if (p.catalog->fragment(fragments::FragmentType::kAggColumn,
                            space.columns()[c].frag)
            .is_star_column()) {
      star_col = c;
    }
  }
  ASSERT_LT(star_col, space.columns().size());
  for (size_t f = 0; f < space.functions().size(); ++f) {
    db::AggFn fn = p.catalog->fragment(fragments::FragmentType::kAggFunction,
                                       space.functions()[f].frag)
                       .fn;
    bool star_ok = space.Valid(f, star_col, 0);
    if (fn == db::AggFn::kSum || fn == db::AggFn::kAvg ||
        fn == db::AggFn::kMin || fn == db::AggFn::kMax ||
        fn == db::AggFn::kCountDistinct) {
      EXPECT_FALSE(star_ok) << db::AggFnName(fn);
    }
    if (fn == db::AggFn::kCount) {
      EXPECT_TRUE(star_ok);
    }
    // ConditionalProbability needs a predicate: subset 0 is empty.
    if (fn == db::AggFn::kConditionalProbability) {
      EXPECT_FALSE(space.Valid(f, star_col, 0));
    }
  }
}

TEST(CandidateSpaceTest, SubsetsHaveDistinctColumns) {
  Pipeline p;
  ModelOptions options;
  auto space = CandidateSpace::Build(p.database, *p.catalog, p.relevance[0],
                                     options);
  for (const auto& subset : space.subsets()) {
    std::set<int> cols(subset.restrict_cols.begin(),
                       subset.restrict_cols.end());
    EXPECT_EQ(cols.size(), subset.restrict_cols.size());
    EXPECT_LE(subset.frags.size(),
              static_cast<size_t>(options.max_predicates));
  }
}

TEST(CandidateSpaceTest, MaterializeRoundTrip) {
  Pipeline p;
  ModelOptions options;
  auto space = CandidateSpace::Build(p.database, *p.catalog, p.relevance[0],
                                     options);
  auto q = space.Materialize(0, 0, 0, *p.catalog);
  db::QueryExecutor exec(&p.database);
  // Materialized candidates that pass Valid() must execute.
  if (space.Valid(0, 0, 0)) {
    EXPECT_TRUE(exec.Validate(q).ok());
  }
}

// ---------------------------------------------------------------------------
// The headline integration test: the full EM pipeline must translate the
// paper's Example 1 claims to their ground-truth queries.
// ---------------------------------------------------------------------------

TEST(TranslatorTest, ResolvesPaperExampleClaims) {
  Pipeline p;
  ModelOptions options;
  db::EvalEngine engine(&p.database, db::EvalStrategy::kMergedCached);
  Translator translator(&p.database, p.catalog.get(), options);
  auto result = translator.Translate(p.detected, p.relevance, &engine);
  ASSERT_EQ(result.distributions.size(), 3u);  // four, three, one

  // Claim "four": Count(*) WHERE Games='indef' must be top-1 and match.
  {
    const auto* top = result.distributions[0].top();
    ASSERT_NE(top, nullptr);
    EXPECT_TRUE(top->matches);
    ASSERT_TRUE(top->result.has_value());
    EXPECT_DOUBLE_EQ(*top->result, 4.0);
  }
  // Claim "three": must find a matching query (result 3).
  {
    const auto* top = result.distributions[1].top();
    ASSERT_NE(top, nullptr);
    EXPECT_TRUE(top->matches) << top->query.ToSql();
  }
  // Claim "one": the gambling query (Example 5).
  {
    const auto* top = result.distributions[2].top();
    ASSERT_NE(top, nullptr);
    EXPECT_TRUE(top->matches) << top->query.ToSql();
    ASSERT_TRUE(top->result.has_value());
    EXPECT_DOUBLE_EQ(*top->result, 1.0);
  }
  EXPECT_GE(result.em_iterations, 1);
  EXPECT_GT(result.queries_evaluated, 0u);
  EXPECT_GT(result.total_candidates, 100u);
}

TEST(TranslatorTest, DistributionsNormalized) {
  Pipeline p;
  ModelOptions options;
  db::EvalEngine engine(&p.database, db::EvalStrategy::kMergedCached);
  Translator translator(&p.database, p.catalog.get(), options);
  auto result = translator.Translate(p.detected, p.relevance, &engine);
  for (const auto& dist : result.distributions) {
    double total = 0;
    double prev = 1.0;
    for (const auto& cand : dist.ranked) {
      total += cand.probability;
      EXPECT_LE(cand.probability, prev + 1e-12);  // sorted descending
      prev = cand.probability;
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST(TranslatorTest, AblationsDegradeGracefully) {
  Pipeline p;
  db::EvalEngine engine(&p.database, db::EvalStrategy::kMergedCached);

  // S_c only: no evaluations enter the posterior, single EM iteration.
  ModelOptions sc_only;
  sc_only.use_eval_results = false;
  sc_only.use_priors = false;
  Translator t1(&p.database, p.catalog.get(), sc_only);
  auto r1 = t1.Translate(p.detected, p.relevance, &engine);
  EXPECT_EQ(r1.em_iterations, 1);

  // Full model must do at least as well on top-1 matches.
  ModelOptions full;
  Translator t2(&p.database, p.catalog.get(), full);
  auto r2 = t2.Translate(p.detected, p.relevance, &engine);
  int matches1 = 0, matches2 = 0;
  for (size_t i = 0; i < r1.distributions.size(); ++i) {
    if (r1.distributions[i].top() && r1.distributions[i].top()->matches) {
      ++matches1;
    }
    if (r2.distributions[i].top() && r2.distributions[i].top()->matches) {
      ++matches2;
    }
  }
  EXPECT_GE(matches2, matches1);
}

TEST(TranslatorTest, EmptyClaimsYieldEmptyResult) {
  Pipeline p;
  db::EvalEngine engine(&p.database, db::EvalStrategy::kMergedCached);
  Translator translator(&p.database, p.catalog.get(), ModelOptions{});
  auto result = translator.Translate({}, {}, &engine);
  EXPECT_TRUE(result.distributions.empty());
  EXPECT_EQ(result.em_iterations, 0);
}

}  // namespace
}  // namespace model
}  // namespace aggchecker
