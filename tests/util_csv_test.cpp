#include "util/csv.h"

#include <gtest/gtest.h>

namespace aggchecker {
namespace {

TEST(CsvTest, ParseSimple) {
  auto data = csv::Parse("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(data->rows.size(), 2u);
  EXPECT_EQ(data->rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(data->rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvTest, ParseQuotedFields) {
  auto data = csv::Parse("name,comment\nalice,\"hello, world\"\n");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->rows[0][1], "hello, world");
}

TEST(CsvTest, ParseEmbeddedQuotesAndNewlines) {
  auto data = csv::Parse("a,b\n\"say \"\"hi\"\"\",\"line1\nline2\"\n");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->rows[0][0], "say \"hi\"");
  EXPECT_EQ(data->rows[0][1], "line1\nline2");
}

TEST(CsvTest, ShortRowsRejected) {
  // Padding short rows would fabricate NULLs; a wrong field count is a
  // corrupt file and must fail loudly, naming the offending line.
  auto data = csv::Parse("a,b,c\n1,2,3\n4,5\n");
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kParseError);
  EXPECT_NE(data.status().message().find("line 3"), std::string::npos)
      << data.status().message();
}

TEST(CsvTest, LongRowsRejected) {
  auto data = csv::Parse("a,b\n1,2,3\n");
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kParseError);
  EXPECT_NE(data.status().message().find("line 2"), std::string::npos)
      << data.status().message();
}

TEST(CsvTest, ErrorLineNumbersCountQuotedNewlines) {
  // The record starting on line 2 spans lines 2-3 (quoted newline); the
  // short row after it is physical line 4.
  auto data = csv::Parse("a,b\n\"x\ny\",1\n2\n");
  ASSERT_FALSE(data.ok());
  EXPECT_NE(data.status().message().find("line 4"), std::string::npos)
      << data.status().message();
}

TEST(CsvTest, MissingFinalNewlineOk) {
  auto data = csv::Parse("a,b\n1,2");
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->rows.size(), 1u);
  EXPECT_EQ(data->rows[0][1], "2");
}

TEST(CsvTest, CrLfTolerated) {
  auto data = csv::Parse("a,b\r\n1,2\r\n");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->rows[0][0], "1");
}

TEST(CsvTest, EmptyInputRejected) {
  EXPECT_FALSE(csv::Parse("").ok());
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  auto data = csv::Parse("a\n\"oops\n");
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kParseError);
  EXPECT_NE(data.status().message().find("line 2"), std::string::npos)
      << data.status().message();
}

TEST(CsvTest, MalformedFileReportsPathAndLine) {
  auto data = csv::ReadFile(std::string(AGG_TEST_DATA_DIR) +
                            "/malformed.csv");
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kParseError);
  EXPECT_NE(data.status().message().find("malformed.csv"), std::string::npos)
      << data.status().message();
  EXPECT_NE(data.status().message().find("line 5"), std::string::npos)
      << data.status().message();
}

TEST(CsvTest, WriteRoundTrip) {
  csv::CsvData data;
  data.header = {"name", "note"};
  data.rows = {{"a", "plain"}, {"b", "with, comma"}, {"c", "with \"quote\""}};
  auto reparsed = csv::Parse(csv::Write(data));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->header, data.header);
  EXPECT_EQ(reparsed->rows, data.rows);
}

TEST(CsvTest, ReadFileNotFound) {
  EXPECT_FALSE(csv::ReadFile("/nonexistent/path.csv").ok());
}

}  // namespace
}  // namespace aggchecker
