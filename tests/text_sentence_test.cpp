#include "text/sentence_splitter.h"

#include <gtest/gtest.h>

namespace aggchecker {
namespace text {
namespace {

TEST(SentenceSplitterTest, BasicSplit) {
  auto s = SplitSentences("First sentence. Second sentence. Third one!");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], "First sentence.");
  EXPECT_EQ(s[2], "Third one!");
}

TEST(SentenceSplitterTest, DecimalNotSplit) {
  auto s = SplitSentences("The share was 13.6 percent. It rose later.");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], "The share was 13.6 percent.");
}

TEST(SentenceSplitterTest, AbbreviationsNotSplit) {
  auto s = SplitSentences("Mr. Smith met Dr. Jones. They talked.");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], "Mr. Smith met Dr. Jones.");
}

TEST(SentenceSplitterTest, InitialsNotSplit) {
  auto s = SplitSentences("J. Smith was elected. The margin was small.");
  ASSERT_EQ(s.size(), 2u);
}

TEST(SentenceSplitterTest, QuestionAndExclamation) {
  auto s = SplitSentences("Really? Yes! Indeed.");
  EXPECT_EQ(s.size(), 3u);
}

TEST(SentenceSplitterTest, TrailingTextWithoutPeriod) {
  auto s = SplitSentences("Complete sentence. And a fragment");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[1], "And a fragment");
}

TEST(SentenceSplitterTest, EmptyInput) {
  EXPECT_TRUE(SplitSentences("").empty());
  EXPECT_TRUE(SplitSentences("   ").empty());
}

TEST(SentenceSplitterTest, ClosingQuoteAfterPeriod) {
  auto s = SplitSentences("He said \"it works.\" Then he left.");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[1], "Then he left.");
}

TEST(SentenceSplitterTest, NumberStartsNextSentence) {
  auto s = SplitSentences("The total was large. 41 percent agreed.");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[1], "41 percent agreed.");
}

TEST(SentenceSplitterTest, PaperExamplePassage) {
  auto s = SplitSentences(
      "There were only four previous lifetime bans in my database - three "
      "were for repeated substance abuse, one was for gambling. The rest "
      "were shorter.");
  ASSERT_EQ(s.size(), 2u);
}

}  // namespace
}  // namespace text
}  // namespace aggchecker
