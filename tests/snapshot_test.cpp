// Versioned on-disk snapshots (DESIGN.md §15): save/load round trip, the
// differential bit-identity contract — a snapshot-loaded checker must
// produce CheckReports byte-identical to a freshly built one at every
// thread count and governor budget — and the corruption ladder: a
// truncated file, a flipped payload byte, and a future-format header each
// fail with a clean descriptive Status and degrade to a full rebuild.

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/aggchecker.h"
#include "core/fleet_scheduler.h"
#include "corpus/embedded_articles.h"
#include "corpus/harness.h"
#include "db/query_interner.h"
#include "db/relation_cache.h"
#include "snapshot/format.h"
#include "snapshot/snapshot.h"
#include "test_fixtures.h"

namespace aggchecker {
namespace {

const char* kDir = "snapshot_test_dir";

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Save -> load -> check: the loaded database, catalog, and interner image
// reproduce the saving checker's verdicts byte for byte.
TEST(SnapshotTest, RoundTripReproducesCheckerState) {
  auto articles = corpus::EmbeddedArticles();
  ASSERT_FALSE(articles.empty());
  const corpus::CorpusCase& article = articles.front();

  auto fresh = core::AggChecker::Create(&article.database, {});
  ASSERT_TRUE(fresh.ok());
  auto fresh_report = fresh->Check(article.document);
  ASSERT_TRUE(fresh_report.ok());

  ::mkdir(kDir, 0755);
  const std::string path = std::string(kDir) + "/roundtrip.snap";
  snapshot::SnapshotStats stats;
  ASSERT_TRUE(snapshot::WriteSnapshot(path, fresh->database(),
                                      &fresh->catalog(),
                                      &fresh->engine().interner(), &stats)
                  .ok());
  EXPECT_GT(stats.file_bytes, 0u);
  EXPECT_GT(stats.database_bytes, 0u);
  EXPECT_GT(stats.catalog_bytes, 0u);
  EXPECT_GT(stats.interner_bytes, 0u);

  auto loaded = snapshot::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->database.TotalRows(), article.database.TotalRows());
  ASSERT_NE(loaded->catalog, nullptr);
  ASSERT_TRUE(loaded->has_interner());

  core::CheckOptions options;
  options.prebuilt_catalog = loaded->catalog;
  auto reloaded = core::AggChecker::Create(&loaded->database, options);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_TRUE(loaded->SeedInterner(&reloaded->engine().interner()).ok());
  auto reloaded_report = reloaded->Check(article.document);
  ASSERT_TRUE(reloaded_report.ok());
  EXPECT_EQ(core::FleetVerdictFingerprint(*reloaded_report),
            core::FleetVerdictFingerprint(*fresh_report));
  std::remove(path.c_str());
}

// The tentpole acceptance sweep: snapshot-loaded runs must be bit-identical
// to freshly built runs at 1/2/8 threads, with and without a governor
// budget (a budget tight enough to cut claims partial must cut the same
// claims either way — governed runs are part of the identity surface).
TEST(SnapshotTest, DifferentialBitIdentityAcrossThreadsAndBudgets) {
  auto corpus = corpus::EmbeddedArticles();
  ASSERT_FALSE(corpus.empty());

  ::mkdir(kDir, 0755);
  corpus::SnapshotRunOptions save;
  save.dir = kDir;
  save.save = true;
  corpus::SnapshotRunStats save_stats;
  auto saved =
      corpus::RunOnCorpus(corpus, core::CheckOptions{}, save, &save_stats);
  ASSERT_EQ(save_stats.cases_saved, corpus.size());
  EXPECT_GT(save_stats.snapshot_bytes, 0u);

  corpus::SnapshotRunOptions load;
  load.dir = kDir;
  load.load = true;

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (uint64_t budget : {uint64_t{0}, uint64_t{20'000}}) {
      core::CheckOptions options;
      options.model.num_threads = threads;
      options.governor.max_row_scans = budget;

      auto fresh = corpus::RunOnCorpus(corpus, options);
      corpus::SnapshotRunStats load_stats;
      auto snap = corpus::RunOnCorpus(corpus, options, load, &load_stats);
      EXPECT_EQ(load_stats.cases_loaded, corpus.size())
          << "threads=" << threads << " budget=" << budget;
      EXPECT_EQ(load_stats.cases_rebuilt, 0u);

      ASSERT_EQ(fresh.reports.size(), snap.reports.size());
      for (size_t i = 0; i < fresh.reports.size(); ++i) {
        EXPECT_EQ(core::FleetVerdictFingerprint(snap.reports[i]),
                  core::FleetVerdictFingerprint(fresh.reports[i]))
            << corpus[i].name << " diverged at threads=" << threads
            << " budget=" << budget;
      }
    }
  }
  for (const auto& test_case : corpus) {
    std::remove(corpus::SnapshotPathForCase(kDir, test_case.name).c_str());
  }
}

// The corruption ladder: every damaged variant fails LoadSnapshot with the
// documented code and message, and the harness degrades each to a clean
// full rebuild whose report matches the snapshot-free reference.
TEST(SnapshotTest, CorruptionFallsBackToRebuild) {
  auto articles = corpus::EmbeddedArticles();
  ASSERT_FALSE(articles.empty());
  std::vector<corpus::CorpusCase> one;
  one.push_back(std::move(articles.front()));

  ::mkdir(kDir, 0755);
  corpus::SnapshotRunOptions save;
  save.dir = kDir;
  save.save = true;
  corpus::SnapshotRunStats save_stats;
  auto reference =
      corpus::RunOnCorpus(one, core::CheckOptions{}, save, &save_stats);
  ASSERT_EQ(save_stats.cases_saved, 1u);
  ASSERT_EQ(reference.reports.size(), 1u);
  const std::string reference_fp =
      core::FleetVerdictFingerprint(reference.reports[0]);

  const std::string path = corpus::SnapshotPathForCase(kDir, one[0].name);
  const std::string pristine = ReadFile(path);
  ASSERT_GT(pristine.size(), sizeof(snapshot::FileHeader));

  // Variant 1: file cut in half (a crashed copy; the atomic writer itself
  // never leaves one behind).
  std::string truncated = pristine.substr(0, pristine.size() / 2);
  // Variant 2: one payload bit flipped near the end of the file.
  std::string flipped = pristine;
  flipped[flipped.size() - 9] =
      static_cast<char>(flipped[flipped.size() - 9] ^ 0x40);
  // Variant 3: a snapshot from a future format revision.
  std::string future = pristine;
  const uint32_t version = snapshot::kFormatVersion + 1;
  std::memcpy(&future[8], &version, sizeof(version));

  struct Variant {
    const char* label;
    const std::string* bytes;
    StatusCode code;
  };
  const Variant variants[] = {
      {"truncated", &truncated, StatusCode::kParseError},
      {"flipped-byte", &flipped, StatusCode::kParseError},
      {"future-version", &future, StatusCode::kUnsupported},
  };
  for (const Variant& variant : variants) {
    WriteFile(path, *variant.bytes);
    auto direct = snapshot::LoadSnapshot(path);
    ASSERT_FALSE(direct.ok()) << variant.label;
    EXPECT_EQ(direct.status().code(), variant.code)
        << variant.label << ": " << direct.status().ToString();

    corpus::SnapshotRunOptions load;
    load.dir = kDir;
    load.load = true;
    corpus::SnapshotRunStats stats;
    auto run = corpus::RunOnCorpus(one, core::CheckOptions{}, load, &stats);
    EXPECT_EQ(stats.cases_loaded, 0u) << variant.label;
    EXPECT_EQ(stats.cases_rebuilt, 1u) << variant.label;
    ASSERT_EQ(run.reports.size(), 1u) << variant.label;
    EXPECT_EQ(core::FleetVerdictFingerprint(run.reports[0]), reference_fp)
        << variant.label << ": rebuild fallback diverged";
  }

  // The pristine bytes restored, the snapshot loads again.
  WriteFile(path, pristine);
  corpus::SnapshotRunOptions load;
  load.dir = kDir;
  load.load = true;
  corpus::SnapshotRunStats stats;
  auto run = corpus::RunOnCorpus(one, core::CheckOptions{}, load, &stats);
  EXPECT_EQ(stats.cases_loaded, 1u);
  ASSERT_EQ(run.reports.size(), 1u);
  EXPECT_EQ(core::FleetVerdictFingerprint(run.reports[0]), reference_fp);
  std::remove(path.c_str());
}

// Incremental re-verification satellite (DESIGN.md §16): per-table data
// versions ride in the kDatabase section. A bumped table round-trips its
// counter, post-load ingestion continues the sequence and invalidates
// version-keyed caches exactly as on a built database, and a pre-version
// format header (v1) is rejected with a clean Unsupported so callers
// rebuild instead of misreading bytes.
TEST(SnapshotTest, DataVersionsRoundTripAndInvalidateAfterLoad) {
  auto database = testing_fixtures::MakeOrdersDatabase();
  ASSERT_TRUE(corpus::AppendSyntheticRows(&database, "orders", 1).ok());
  ASSERT_EQ(database.TableVersion("orders"), 2u);
  ASSERT_EQ(database.TableVersion("customers"), 1u);

  ::mkdir(kDir, 0755);
  const std::string path = std::string(kDir) + "/versions.snap";
  ASSERT_TRUE(snapshot::WriteSnapshot(path, database, nullptr, nullptr).ok());

  auto loaded = snapshot::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->database.TableVersion("orders"), 2u)
      << "the version counter must survive the round trip";
  EXPECT_EQ(loaded->database.TableVersion("customers"), 1u);

  // Ingestion into the loaded database continues the version sequence and
  // invalidates the relations that read the touched table.
  ResourceGovernor governor;
  {
    ResourceGovernor::Shard shard(&governor);
    ASSERT_TRUE(loaded->database.relation_cache()
                    .Acquire(loaded->database, {"orders", "customers"}, shard)
                    .ok());
  }
  ASSERT_TRUE(
      corpus::AppendSyntheticRows(&loaded->database, "orders", 1).ok());
  EXPECT_EQ(loaded->database.TableVersion("orders"), 3u);
  {
    ResourceGovernor::Shard shard(&governor);
    db::RelationCache::AcquireInfo info;
    ASSERT_TRUE(loaded->database.relation_cache()
                    .Acquire(loaded->database, {"orders", "customers"},
                             shard, &info)
                    .ok());
    EXPECT_TRUE(info.built)
        << "a post-load append must invalidate the cached relation";
  }

  // A v1 header (the pre-version layout) must be rejected, not misread:
  // the v1 kDatabase section has no per-table version field, so decoding
  // it with this reader would shift every following byte.
  std::string pristine = ReadFile(path);
  const uint32_t old_version = 1;
  std::memcpy(&pristine[8], &old_version, sizeof(old_version));
  WriteFile(path, pristine);
  auto rejected = snapshot::LoadSnapshot(path);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnsupported)
      << rejected.status().ToString();
  std::remove(path.c_str());
}

// Format v3 (DESIGN.md §17): per-column statistics ride in the snapshot so
// a loaded database probes without a first-touch scan. The seeded stats
// must equal what a clean build computes, a v2 header (the pre-stats
// layout) is rejected with Unsupported so callers rebuild instead of
// misreading, and a corrupted stats record fails closed.
TEST(SnapshotTest, ColumnStatsRideTheSnapshot) {
  auto database = testing_fixtures::MakeOrdersDatabase();

  ::mkdir(kDir, 0755);
  const std::string path = std::string(kDir) + "/stats.snap";
  ASSERT_TRUE(snapshot::WriteSnapshot(path, database, nullptr, nullptr).ok());

  auto loaded = snapshot::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (size_t t = 0; t < database.num_tables(); ++t) {
    const db::Table& built = database.table(t);
    const db::Table& thawed = loaded->database.table(t);
    ASSERT_EQ(built.num_columns(), thawed.num_columns());
    for (size_t c = 0; c < built.num_columns(); ++c) {
      const db::ColumnStats& a = built.column(c).Stats();
      const db::ColumnStats& b = thawed.column(c).Stats();
      EXPECT_EQ(a.rows, b.rows);
      EXPECT_EQ(a.non_null, b.non_null);
      EXPECT_EQ(a.distinct, b.distinct);
      EXPECT_EQ(a.numeric, b.numeric);
      EXPECT_EQ(a.finite_count, b.finite_count);
      EXPECT_EQ(a.has_non_finite, b.has_non_finite);
      EXPECT_EQ(a.integral, b.integral);
      if (a.finite_count > 0) {
        EXPECT_DOUBLE_EQ(a.min, b.min);
        EXPECT_DOUBLE_EQ(a.max, b.max);
        EXPECT_DOUBLE_EQ(a.sum_pos, b.sum_pos);
        EXPECT_DOUBLE_EQ(a.sum_neg, b.sum_neg);
        EXPECT_DOUBLE_EQ(a.max_abs, b.max_abs);
      }
    }
  }

  // A v2 header must be rejected outright: v2 columns carry no stats blob,
  // so decoding them with this reader would misalign every later section.
  std::string pristine = ReadFile(path);
  const uint32_t v2 = 2;
  std::memcpy(&pristine[8], &v2, sizeof(v2));
  WriteFile(path, pristine);
  auto rejected = snapshot::LoadSnapshot(path);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnsupported)
      << rejected.status().ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aggchecker
