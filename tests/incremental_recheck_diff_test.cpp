// Incremental re-verification (DESIGN.md §16): ReCheck against a prior
// report must be bit-identical (FleetVerdictFingerprint) to a from-scratch
// Check on the current data — across thread counts, governor budgets, and
// both re-check strategies (full re-run under document-wide coupling,
// claim-level splicing when priors are off and no budget is shared). Also
// pins the dependency-stamp contract that drives the splice decision and
// the alignment fallback when the document itself changes.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/aggchecker.h"
#include "core/fleet_scheduler.h"
#include "corpus/embedded_articles.h"
#include "corpus/harness.h"
#include "db/database.h"
#include "db/table.h"
#include "text/document.h"

namespace aggchecker {
namespace {

// Two disconnected single-table domains with fully disjoint vocabularies —
// no shared column names, value literals, or topical words between the
// weather and payroll claims (real articles share too much function
// vocabulary for keyword retrieval to keep candidate spaces apart). With
// disjoint terms, each claim's retrieved fragments — and so its dependency
// stamp — stay inside its own table, giving deterministic splice
// selectivity when only one table's data changes.
corpus::CorpusCase MakeTwoDomainCase() {
  corpus::CorpusCase c;
  c.name = "weather+payroll";

  db::Table weather("weather");
  EXPECT_TRUE(weather.AddColumn("city", db::ValueType::kString).ok());
  EXPECT_TRUE(weather.AddColumn("rainfall", db::ValueType::kLong).ok());
  const char* cities[] = {"oslo", "bergen", "tromso", "oslo", "bergen"};
  const int64_t rain[] = {40, 55, 30, 45, 60};
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_TRUE(weather
                    .AddRow({db::Value(std::string(cities[r])),
                             db::Value(rain[r])})
                    .ok());
  }
  EXPECT_TRUE(c.database.AddTable(std::move(weather)).ok());

  db::Table payroll("payroll");
  EXPECT_TRUE(payroll.AddColumn("department", db::ValueType::kString).ok());
  EXPECT_TRUE(payroll.AddColumn("salary", db::ValueType::kLong).ok());
  const char* depts[] = {"engineering", "marketing", "engineering"};
  const int64_t salary[] = {520, 410, 480};
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_TRUE(payroll
                    .AddRow({db::Value(std::string(depts[r])),
                             db::Value(salary[r])})
                    .ok());
  }
  EXPECT_TRUE(c.database.AddTable(std::move(payroll)).ok());

  c.document.set_title("quarterly figures");
  int weather_section = c.document.AddSection("weather");
  c.document.AddParagraph(
      "Average rainfall across cities came to 46 millimeters. "
      "The city of oslo measured 45 millimeters of rainfall.",
      weather_section);
  int payroll_section = c.document.AddSection("payroll");
  c.document.AddParagraph(
      "The maximum salary paid was 520 per week. "
      "Average salary in the engineering department reached 500.",
      payroll_section);
  return c;
}

// Every verdict carries its dependency stamp: non-empty, lower-cased,
// strictly sorted (the translator emits a set), and stamped with the
// database's current version of each table.
TEST(IncrementalReCheckTest, DependencyStampsCoverClaims) {
  corpus::CorpusCase article = corpus::MakeDonationsJoinCase();
  auto checker = core::AggChecker::Create(&article.database, {});
  ASSERT_TRUE(checker.ok());
  auto report = checker->Check(article.document);
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->verdicts.size(), 0u);
  EXPECT_EQ(report->claims_spliced, 0u);
  EXPECT_EQ(report->claims_rechecked, 0u);

  for (const core::ClaimVerdict& v : report->verdicts) {
    ASSERT_FALSE(v.dependencies.empty())
        << "claim " << v.claim.id << " reads data but has no stamp";
    for (size_t d = 0; d < v.dependencies.size(); ++d) {
      const auto& [table, version] = v.dependencies[d];
      for (char ch : table) {
        EXPECT_FALSE(ch >= 'A' && ch <= 'Z')
            << table << " must be stamped lower-cased";
      }
      if (d > 0) {
        EXPECT_LT(v.dependencies[d - 1].first, table);
      }
      EXPECT_EQ(version, article.database.TableVersion(table))
          << table << " stamped with a stale version";
      EXPECT_NE(version, 0u) << table << " is not a table of this database";
    }
  }
}

// No data change: ReCheck splices the entire prior report without touching
// the evaluation stack, and the result is fingerprint-identical.
TEST(IncrementalReCheckTest, NoChangeReChecksToFullSplice) {
  corpus::CorpusCase article = corpus::MakeDonationsJoinCase();
  auto checker = core::AggChecker::Create(&article.database, {});
  ASSERT_TRUE(checker.ok());
  auto prior = checker->Check(article.document);
  ASSERT_TRUE(prior.ok());

  auto recheck = checker->ReCheck(article.document, *prior);
  ASSERT_TRUE(recheck.ok());
  EXPECT_EQ(recheck->claims_spliced, prior->verdicts.size());
  EXPECT_EQ(recheck->claims_rechecked, 0u);
  EXPECT_EQ(core::FleetVerdictFingerprint(*recheck),
            core::FleetVerdictFingerprint(*prior));
}

// The tentpole acceptance sweep: after appending rows to one table, ReCheck
// must be bit-identical to a from-scratch Check on the mutated data at
// 1/2/8 threads, with and without a governor budget. The cold reference
// adopts the warm checker's catalog (the catalog deliberately does not
// track ingestion) so both runs translate over the same fragment space.
TEST(IncrementalReCheckTest, BitIdenticalAfterAppendAcrossThreadsAndBudgets) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (uint64_t budget : {uint64_t{0}, uint64_t{20'000}}) {
      corpus::CorpusCase article = corpus::MakeDonationsJoinCase();
      core::CheckOptions options;
      options.model.num_threads = threads;
      options.governor.max_row_scans = budget;

      auto warm = core::AggChecker::Create(&article.database, options);
      ASSERT_TRUE(warm.ok());
      auto prior = warm->Check(article.document);
      ASSERT_TRUE(prior.ok());

      ASSERT_TRUE(
          corpus::AppendSyntheticRows(&article.database, "gifts", 20).ok());
      auto recheck = warm->ReCheck(article.document, *prior);
      ASSERT_TRUE(recheck.ok());
      // Default options keep priors on, so every claim re-checks (coupled
      // distributions), against caches the version sweep has narrowed.
      EXPECT_EQ(recheck->claims_rechecked, prior->verdicts.size());
      EXPECT_EQ(recheck->claims_spliced, 0u);
      if (budget == 0) {
        EXPECT_GT(recheck->eval_stats.cache_invalidations, 0u)
            << "the version sweep must evict cubes reading the bumped table";
      }

      core::CheckOptions cold_options = options;
      cold_options.prebuilt_catalog = warm->shared_catalog();
      auto cold = core::AggChecker::Create(&article.database, cold_options);
      ASSERT_TRUE(cold.ok());
      auto reference = cold->Check(article.document);
      ASSERT_TRUE(reference.ok());

      EXPECT_EQ(core::FleetVerdictFingerprint(*recheck),
                core::FleetVerdictFingerprint(*reference))
          << "diverged at threads=" << threads << " budget=" << budget;
    }
  }
}

// Claim-level splicing (priors off, no budget): only claims whose stamped
// dependency set intersects the bumped table re-check; the rest splice.
// The expected changed set is computed from the prior report's own stamps,
// and the merged two-domain case guarantees real selectivity — NFL claims
// cannot reach the gifts table across the disconnected FK forest.
TEST(IncrementalReCheckTest, SpliceSkipsClaimsOffTheTouchedTables) {
  corpus::CorpusCase article = MakeTwoDomainCase();
  core::CheckOptions options;
  options.model.use_priors = false;

  auto warm = core::AggChecker::Create(&article.database, options);
  ASSERT_TRUE(warm.ok());
  auto prior = warm->Check(article.document);
  ASSERT_TRUE(prior.ok());
  ASSERT_GT(prior->verdicts.size(), 1u);

  ASSERT_TRUE(
      corpus::AppendSyntheticRows(&article.database, "payroll", 2).ok());
  size_t expect_rechecked = 0;
  for (const core::ClaimVerdict& v : prior->verdicts) {
    for (const auto& dep : v.dependencies) {
      if (article.database.TableVersion(dep.first) != dep.second) {
        ++expect_rechecked;
        break;
      }
    }
  }
  ASSERT_GT(expect_rechecked, 0u) << "append must reach some claim";
  ASSERT_LT(expect_rechecked, prior->verdicts.size())
      << "the weather component must stay untouched for splicing to engage";

  auto recheck = warm->ReCheck(article.document, *prior);
  ASSERT_TRUE(recheck.ok());
  EXPECT_EQ(recheck->claims_rechecked, expect_rechecked);
  EXPECT_EQ(recheck->claims_spliced,
            prior->verdicts.size() - expect_rechecked);

  core::CheckOptions cold_options = options;
  cold_options.prebuilt_catalog = warm->shared_catalog();
  auto cold = core::AggChecker::Create(&article.database, cold_options);
  ASSERT_TRUE(cold.ok());
  auto reference = cold->Check(article.document);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(core::FleetVerdictFingerprint(*recheck),
            core::FleetVerdictFingerprint(*reference))
      << "spliced report diverged from the from-scratch reference";
}

// A changed document de-aligns the prior report: ReCheck must fall back to
// a full Check (incremental accounting zeroed) and still return the right
// answer for the new text.
TEST(IncrementalReCheckTest, MisalignedDocumentFallsBackToFullCheck) {
  corpus::CorpusCase article = corpus::MakeDonationsJoinCase();
  auto checker = core::AggChecker::Create(&article.database, {});
  ASSERT_TRUE(checker.ok());
  auto prior = checker->Check(article.document);
  ASSERT_TRUE(prior.ok());

  text::TextDocument edited = article.document;
  edited.AddParagraph(
      "The average donation across all gifts was 250 dollars.");
  auto fallback = checker->ReCheck(edited, *prior);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback->claims_spliced, 0u);
  EXPECT_EQ(fallback->claims_rechecked, 0u);

  auto reference = checker->Check(edited);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(fallback->verdicts.size(), reference->verdicts.size());
  EXPECT_EQ(core::FleetVerdictFingerprint(*fallback),
            core::FleetVerdictFingerprint(*reference));
}

}  // namespace
}  // namespace aggchecker
