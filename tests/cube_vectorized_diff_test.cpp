// Differential property test for the cube execution backends: on
// randomized schemas, joins, and cube specs — NULL-heavy columns, NaN/Inf
// measures, mixed long/double cells, high-cardinality dimensions, star
// aggregates — the vectorized combo-partitioned pipeline must produce
// results *bit-identical* to the row-at-a-time scalar oracle, for any
// thread count, and charge the same governor totals.

#include "db/cube.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "util/resource_governor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aggchecker {
namespace db {
namespace {

// Bit-exact comparison: nullopt only equals nullopt, values must match as
// raw bit patterns (catches sign-of-zero and NaN-payload drift that
// EXPECT_DOUBLE_EQ would miss).
bool BitEqual(const std::optional<double>& a, const std::optional<double>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  uint64_t ab = 0, bb = 0;
  std::memcpy(&ab, &*a, sizeof(ab));
  std::memcpy(&bb, &*b, sizeof(bb));
  return ab == bb;
}

std::string Render(const std::optional<double>& v) {
  if (!v.has_value()) return "<missing>";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", *v);
  return buf;
}

struct CubeSpec {
  std::vector<ColumnRef> dims;
  std::vector<std::vector<Value>> literals;
  std::vector<CubeAggregate> aggs;
};

// A fact table with two dimension columns and three measure columns, plus
// (in join mode) a dimension table reached through a PK-FK edge with a
// dangling foreign key thrown in. `dim_card` controls dimension
// cardinality — small values stress bucket collisions, large values stress
// the per-block dictionaries of the vectorized pass 1.
Database MakeRandomDatabase(Rng& rng, size_t rows, size_t dim_card,
                            bool join_mode) {
  Database database("fuzz");
  Table fact("fact");
  EXPECT_TRUE(fact.AddColumn("d_str", ValueType::kString).ok());
  EXPECT_TRUE(fact.AddColumn("d_long", ValueType::kLong).ok());
  EXPECT_TRUE(fact.AddColumn("m_long", ValueType::kLong).ok());
  EXPECT_TRUE(fact.AddColumn("m_double", ValueType::kDouble).ok());
  EXPECT_TRUE(fact.AddColumn("fk", ValueType::kLong).ok());
  const size_t fk_card = join_mode ? 8 : 1;
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    // NULL-heavy string dimension.
    if (rng.NextBool(0.25)) {
      row.emplace_back();
    } else {
      row.emplace_back(
          "s" + std::to_string(rng.NextBounded(static_cast<uint64_t>(
                    dim_card))));
    }
    // Long dimension, occasionally NULL.
    if (rng.NextBool(0.1)) {
      row.emplace_back();
    } else {
      row.emplace_back(static_cast<int64_t>(
          rng.NextBounded(static_cast<uint64_t>(dim_card * 3))));
    }
    // Long measure.
    if (rng.NextBool(0.2)) {
      row.emplace_back();
    } else {
      row.emplace_back(static_cast<int64_t>(rng.NextInt(-50, 50)));
    }
    // Double measure: NULLs, NaN, +/-Inf, long-typed cells in a
    // double-typed column (type coercion), and plain doubles.
    double roll = rng.NextDouble();
    if (roll < 0.1) {
      row.emplace_back();
    } else if (roll < 0.15) {
      row.emplace_back(std::numeric_limits<double>::quiet_NaN());
    } else if (roll < 0.2) {
      row.emplace_back(rng.NextBool(0.5)
                           ? std::numeric_limits<double>::infinity()
                           : -std::numeric_limits<double>::infinity());
    } else if (roll < 0.3) {
      row.emplace_back(static_cast<int64_t>(rng.NextInt(-9, 9)));
    } else {
      row.emplace_back(rng.NextDouble() * 200.0 - 100.0);
    }
    // Foreign key; id `fk_card` dangles (no dim row), exercising the
    // inner-join row filter.
    row.emplace_back(static_cast<int64_t>(rng.NextBounded(
        static_cast<uint64_t>(fk_card) + (join_mode ? 1 : 0))));
    EXPECT_TRUE(fact.AddRow(std::move(row)).ok());
  }
  EXPECT_TRUE(database.AddTable(std::move(fact)).ok());
  if (join_mode) {
    Table dim("dim");
    EXPECT_TRUE(dim.AddColumn("id", ValueType::kLong).ok());
    EXPECT_TRUE(dim.AddColumn("region", ValueType::kString).ok());
    const char* regions[] = {"north", "south", "east", "west"};
    for (size_t i = 0; i < fk_card; ++i) {
      EXPECT_TRUE(dim.AddRow({Value(static_cast<int64_t>(i)),
                              Value(std::string(regions[i % 4]))})
                      .ok());
    }
    EXPECT_TRUE(database.AddTable(std::move(dim)).ok());
    EXPECT_TRUE(
        database.AddForeignKey({"fact", "fk"}, {"dim", "id"}).ok());
  }
  return database;
}

void MakeRandomSpec(Rng& rng, const Database& database, bool join_mode,
                    CubeSpec* spec) {
  std::vector<ColumnRef> dim_pool = {{"fact", "d_str"}, {"fact", "d_long"}};
  if (join_mode) dim_pool.push_back({"dim", "region"});
  rng.Shuffle(&dim_pool);
  size_t nd = static_cast<size_t>(rng.NextInt(1, 3));
  for (size_t d = 0; d < nd && d < dim_pool.size(); ++d) {
    const Column* col = database.FindColumn(dim_pool[d]);
    ASSERT_NE(col, nullptr) << dim_pool[d].ToString();
    std::vector<Value> value_pool = col->DistinctValues();
    rng.Shuffle(&value_pool);
    size_t nl = std::min<size_t>(
        value_pool.size(), static_cast<size_t>(rng.NextInt(1, 4)));
    std::vector<Value> lits(value_pool.begin(), value_pool.begin() + nl);
    // Sometimes a literal that matches nothing (empty bucket).
    if (rng.NextBool(0.3)) lits.emplace_back(std::string("zzz-absent"));
    spec->dims.push_back(dim_pool[d]);
    spec->literals.push_back(std::move(lits));
  }
  // Aggregate pool covering every base function, star and column forms,
  // and both typed measures.
  auto agg = [](AggFn fn, const char* column) {
    CubeAggregate a;
    a.fn = fn;
    if (column != nullptr) a.column = {"fact", column};
    return a;
  };
  std::vector<CubeAggregate> pool = {
      agg(AggFn::kCount, nullptr),
      agg(AggFn::kCount, "m_long"),
      agg(AggFn::kCountDistinct, "m_double"),
      agg(AggFn::kCountDistinct, "d_long"),
      agg(AggFn::kSum, "m_double"),
      agg(AggFn::kSum, "m_long"),
      agg(AggFn::kAvg, "m_double"),
      agg(AggFn::kMin, "m_double"),
      agg(AggFn::kMax, "m_double"),
      agg(AggFn::kMax, "m_long"),
  };
  rng.Shuffle(&pool);
  size_t na = static_cast<size_t>(rng.NextInt(2, 6));
  spec->aggs.assign(pool.begin(),
                    pool.begin() + static_cast<long>(std::min(na, pool.size())));
}

// Enumerates every representable key (all/default/each literal, per
// dimension) and asserts bit-identical lookups across two cubes.
void ExpectCubesBitIdentical(const CubeResult& expected,
                             const CubeResult& actual,
                             const std::string& label) {
  ASSERT_EQ(expected.num_cells(), actual.num_cells()) << label;
  size_t nd = expected.dims().size();
  std::vector<std::vector<int16_t>> axis(nd);
  for (size_t d = 0; d < nd; ++d) {
    axis[d].push_back(kAllBucket);
    axis[d].push_back(kDefaultBucket);
    for (size_t i = 0; i < expected.literals()[d].size(); ++i) {
      axis[d].push_back(static_cast<int16_t>(i));
    }
  }
  std::vector<int16_t> key(nd, 0);
  std::vector<size_t> pos(nd, 0);
  size_t checked = 0;
  while (true) {
    for (size_t d = 0; d < nd; ++d) key[d] = axis[d][pos[d]];
    for (size_t a = 0; a < expected.aggregates().size(); ++a) {
      std::optional<double> want = expected.Lookup(key, a);
      std::optional<double> got = actual.Lookup(key, a);
      ASSERT_TRUE(BitEqual(want, got))
          << label << " " << expected.aggregates()[a].Key()
          << " key[" << (nd > 0 ? std::to_string(key[0]) : "") << "...]"
          << " oracle=" << Render(want) << " vectorized=" << Render(got);
      ++checked;
    }
    // Odometer increment over the key space.
    size_t d = 0;
    while (d < nd && ++pos[d] == axis[d].size()) pos[d++] = 0;
    if (d == nd) break;
    if (nd == 0) break;
  }
  ASSERT_GT(checked, 0u) << label;
}

struct ExecOutcome {
  std::shared_ptr<CubeResult> cube;
  GovernorUsage usage;
};

ExecOutcome RunCube(const Database& database, const CubeSpec& spec,
                CubeExecMode mode, ThreadPool* pool) {
  ExecOutcome out;
  ResourceGovernor governor;
  CubeExecOptions options;
  options.mode = mode;
  options.pool = pool;
  auto cube = ExecuteCube(database, spec.dims, spec.literals, spec.aggs,
                          nullptr, &governor, options);
  EXPECT_TRUE(cube.ok()) << cube.status().ToString();
  if (cube.ok()) out.cube = *cube;
  out.usage = governor.usage();
  return out;
}

TEST(CubeVectorizedDiffTest, RandomizedCubesMatchScalarOracleBitExact) {
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  for (int trial = 0; trial < 24; ++trial) {
    Rng rng(9000 + static_cast<uint64_t>(trial));
    const bool join_mode = trial % 2 == 1;
    // Trial 0 exceeds the 4096-row block size so pass 1 runs multi-block
    // (and, with the pools below, genuinely in parallel); a high-card
    // trial stresses per-block dictionaries and the translation fold.
    const size_t rows =
        trial == 0 ? 10000
                   : static_cast<size_t>(rng.NextInt(50, 800));
    const size_t dim_card =
        trial % 5 == 2 ? 500 : static_cast<size_t>(rng.NextInt(2, 12));
    Database database = MakeRandomDatabase(rng, rows, dim_card, join_mode);
    CubeSpec spec;
    MakeRandomSpec(rng, database, join_mode, &spec);
    SCOPED_TRACE("trial " + std::to_string(trial) + " rows=" +
                 std::to_string(rows) + " card=" +
                 std::to_string(dim_card) +
                 (join_mode ? " join" : " single"));

    ExecOutcome oracle =
        RunCube(database, spec, CubeExecMode::kScalarOracle, nullptr);
    ExecOutcome serial =
        RunCube(database, spec, CubeExecMode::kVectorized, nullptr);
    ExecOutcome threaded2 =
        RunCube(database, spec, CubeExecMode::kVectorized, &pool2);
    ExecOutcome threaded8 =
        RunCube(database, spec, CubeExecMode::kVectorized, &pool8);
    ASSERT_TRUE(oracle.cube && serial.cube && threaded2.cube &&
                threaded8.cube);

    ExpectCubesBitIdentical(*oracle.cube, *serial.cube, "serial");
    ExpectCubesBitIdentical(*oracle.cube, *threaded2.cube, "2 threads");
    ExpectCubesBitIdentical(*oracle.cube, *threaded8.cube, "8 threads");

    // Governor accounting is mode- and thread-invariant on clean runs:
    // both backends model the same join/combo/group state.
    for (const ExecOutcome* other : {&serial, &threaded2, &threaded8}) {
      EXPECT_EQ(oracle.usage.rows_charged, other->usage.rows_charged);
      EXPECT_EQ(oracle.usage.cube_groups_charged,
                other->usage.cube_groups_charged);
      EXPECT_EQ(oracle.usage.memory_bytes_charged,
                other->usage.memory_bytes_charged);
    }
  }
}

// An all-rows-identical column collapses to one combo; an all-NULL measure
// must leave Sum/Avg/Min/Max cells missing in both backends.
TEST(CubeVectorizedDiffTest, DegenerateColumnsMatch) {
  Database database("degen");
  Table fact("fact");
  ASSERT_TRUE(fact.AddColumn("d", ValueType::kString).ok());
  ASSERT_TRUE(fact.AddColumn("m", ValueType::kDouble).ok());
  for (int r = 0; r < 100; ++r) {
    ASSERT_TRUE(fact.AddRow({Value(std::string("same")), Value()}).ok());
  }
  ASSERT_TRUE(database.AddTable(std::move(fact)).ok());
  CubeSpec spec;
  spec.dims = {{"fact", "d"}};
  spec.literals = {{Value(std::string("same"))}};
  CubeAggregate sum;
  sum.fn = AggFn::kSum;
  sum.column = {"fact", "m"};
  CubeAggregate min;
  min.fn = AggFn::kMin;
  min.column = {"fact", "m"};
  CubeAggregate count;
  spec.aggs = {count, sum, min};
  ExecOutcome oracle =
      RunCube(database, spec, CubeExecMode::kScalarOracle, nullptr);
  ExecOutcome vectorized =
      RunCube(database, spec, CubeExecMode::kVectorized, nullptr);
  ASSERT_TRUE(oracle.cube && vectorized.cube);
  ExpectCubesBitIdentical(*oracle.cube, *vectorized.cube, "degenerate");
  EXPECT_DOUBLE_EQ(vectorized.cube->Lookup({0}, 0).value(), 100.0);
  EXPECT_FALSE(vectorized.cube->Lookup({0}, 1).has_value());
  EXPECT_FALSE(vectorized.cube->Lookup({0}, 2).has_value());
}

}  // namespace
}  // namespace db
}  // namespace aggchecker
