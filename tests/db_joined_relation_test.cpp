#include "db/joined_relation.h"

#include <gtest/gtest.h>

#include "db/cube.h"
#include "db/executor.h"
#include "test_fixtures.h"
#include "util/rng.h"

namespace aggchecker {
namespace db {
namespace {

using testing_fixtures::MakeOrdersDatabase;

TEST(JoinedRelationTest, SingleTablePassThrough) {
  auto database = testing_fixtures::MakeNflDatabase();
  auto rel = JoinedRelation::Build(database, {"nflsuspensions"});
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->num_rows(), 10u);
  auto b = rel->Bind({"nflsuspensions", "Team"});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->at(0).ToString(), "ARI");
  EXPECT_EQ(b->base_row(7), 7u);
}

TEST(JoinedRelationTest, InnerJoinDropsDanglingRows) {
  auto database = MakeOrdersDatabase();
  auto rel = JoinedRelation::Build(database, {"orders", "customers"});
  ASSERT_TRUE(rel.ok());
  // 5 orders, 1 dangling (customer 9): 4 joined rows.
  EXPECT_EQ(rel->num_rows(), 4u);
}

TEST(JoinedRelationTest, JoinedColumnsAlign) {
  auto database = MakeOrdersDatabase();
  auto rel = JoinedRelation::Build(database, {"orders", "customers"});
  ASSERT_TRUE(rel.ok());
  auto cust = rel->Bind({"orders", "customer_id"});
  auto id = rel->Bind({"customers", "id"});
  ASSERT_TRUE(cust.ok());
  ASSERT_TRUE(id.ok());
  for (size_t r = 0; r < rel->num_rows(); ++r) {
    EXPECT_EQ(cust->at(r), id->at(r)) << "row " << r;
  }
}

TEST(JoinedRelationTest, ColumnFromUnjoinedTableRejected) {
  auto database = MakeOrdersDatabase();
  auto rel = JoinedRelation::Build(database, {"orders"});
  ASSERT_TRUE(rel.ok());
  EXPECT_FALSE(rel->Bind({"customers", "region"}).ok());
  EXPECT_FALSE(rel->Bind({"orders", "nope"}).ok());
}

TEST(JoinedRelationTest, ThreeTableChain) {
  auto database = MakeOrdersDatabase();
  Table items("items");
  (void)items.AddColumn("order_id", ValueType::kLong);
  (void)items.AddColumn("sku", ValueType::kString);
  // Two items for order 10, one for order 12, one dangling.
  (void)items.AddRow({Value(int64_t{10}), Value(std::string("apple"))});
  (void)items.AddRow({Value(int64_t{10}), Value(std::string("pear"))});
  (void)items.AddRow({Value(int64_t{12}), Value(std::string("plum"))});
  (void)items.AddRow({Value(int64_t{99}), Value(std::string("ghost"))});
  ASSERT_TRUE(database.AddTable(std::move(items)).ok());
  ASSERT_TRUE(
      database.AddForeignKey({"items", "order_id"}, {"orders", "id"}).ok());

  auto rel = JoinedRelation::Build(database,
                                   {"items", "customers", "orders"});
  ASSERT_TRUE(rel.ok());
  // items joined to orders joined to customers: 3 item rows with live
  // orders, all of whose customers exist.
  EXPECT_EQ(rel->num_rows(), 3u);
  auto region = rel->Bind({"customers", "region"});
  ASSERT_TRUE(region.ok());
  for (size_t r = 0; r < rel->num_rows(); ++r) {
    EXPECT_FALSE(region->at(r).is_null());
  }
}

TEST(JoinedRelationTest, OneToManyMultipliesRows) {
  // Joining from the PK side: each customer row fans out to its orders.
  auto database = MakeOrdersDatabase();
  auto rel = JoinedRelation::Build(database, {"customers", "orders"});
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->num_rows(), 4u);  // same join, order of tables irrelevant
}

// Property: a 3-dimension cube answers every conjunctive count exactly as
// the naive executor, across randomized data.
class ThreeDimCubeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThreeDimCubeTest, CubeMatchesNaiveOnAllCells) {
  Rng rng(GetParam());
  Database database("d");
  Table t("t");
  (void)t.AddColumn("a", ValueType::kString);
  (void)t.AddColumn("b", ValueType::kString);
  (void)t.AddColumn("c", ValueType::kString);
  const char* kVals[] = {"x", "y", "z"};
  int rows = static_cast<int>(rng.NextInt(10, 120));
  for (int r = 0; r < rows; ++r) {
    (void)t.AddRow({Value(std::string(kVals[rng.NextBounded(3)])),
                    Value(std::string(kVals[rng.NextBounded(3)])),
                    Value(std::string(kVals[rng.NextBounded(3)]))});
  }
  (void)database.AddTable(std::move(t));

  std::vector<ColumnRef> dims = {{"t", "a"}, {"t", "b"}, {"t", "c"}};
  std::vector<Value> lits = {Value(std::string("x")),
                             Value(std::string("y"))};
  CubeAggregate count_star;
  count_star.column.table = "t";
  auto cube = ExecuteCube(database, dims, {lits, lits, lits}, {count_star});
  ASSERT_TRUE(cube.ok());

  QueryExecutor exec(&database);
  // Every combination of {x, y, ALL} per dimension.
  const Value options[] = {Value(std::string("x")), Value(std::string("y"))};
  for (int ai = -1; ai < 2; ++ai) {
    for (int bi = -1; bi < 2; ++bi) {
      for (int ci = -1; ci < 2; ++ci) {
        SimpleAggregateQuery q;
        q.agg_column = {"t", ""};
        std::vector<int16_t> key(3, kAllBucket);
        if (ai >= 0) {
          q.predicates.push_back({{"t", "a"}, options[ai]});
          key[0] = static_cast<int16_t>(ai);
        }
        if (bi >= 0) {
          q.predicates.push_back({{"t", "b"}, options[bi]});
          key[1] = static_cast<int16_t>(bi);
        }
        if (ci >= 0) {
          q.predicates.push_back({{"t", "c"}, options[ci]});
          key[2] = static_cast<int16_t>(ci);
        }
        auto naive = exec.Execute(q);
        ASSERT_TRUE(naive.ok());
        double expected = naive->value_or(0.0);
        double from_cube = (*cube)->Lookup(key, 0).value_or(0.0);
        EXPECT_DOUBLE_EQ(from_cube, expected)
            << "a=" << ai << " b=" << bi << " c=" << ci;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeDimCubeTest,
                         ::testing::Range(uint64_t{100}, uint64_t{112}));

}  // namespace
}  // namespace db
}  // namespace aggchecker
