// Dedicated markup tests: character-span arithmetic with several claims in
// one sentence, mixed word/digit/percent forms, and all three styles.

#include "core/markup.h"

#include <gtest/gtest.h>

#include "core/aggchecker.h"
#include "text/document.h"

namespace aggchecker {
namespace core {
namespace {

struct MarkupFixture {
  MarkupFixture() {
    db::Table t("stats");
    (void)t.AddColumn("Kind", db::ValueType::kString);
    (void)t.AddColumn("Score", db::ValueType::kLong);
    for (int i = 0; i < 4; ++i) {
      (void)t.AddRow({db::Value(std::string(i < 3 ? "red" : "blue")),
                      db::Value(static_cast<int64_t>(10 * (i + 1)))});
    }
    (void)database.AddTable(std::move(t));
  }
  db::Database database{"markup"};
};

CheckReport Check(const db::Database& database,
                  const text::TextDocument& doc) {
  auto checker = AggChecker::Create(&database);
  auto report = checker->Check(doc);
  EXPECT_TRUE(report.ok());
  return std::move(*report);
}

TEST(MarkupSpanTest, MultipleClaimsInOneSentenceWrapIndependently) {
  MarkupFixture f;
  // Three claims in one sentence: "4" (correct count), "three" (correct
  // red count), "one" (correct blue count).
  auto doc = text::ParseDocument(
      "The stats table lists 4 rows, of which three are red and one is "
      "blue.");
  ASSERT_TRUE(doc.ok());
  auto report = Check(f.database, *doc);
  ASSERT_EQ(report.verdicts.size(), 3u);
  std::string plain = RenderMarkup(*doc, report, MarkupStyle::kPlain);
  // Each claim wrapped exactly once and spans don't corrupt each other.
  size_t wraps = 0;
  for (size_t pos = plain.find("[OK "); pos != std::string::npos;
       pos = plain.find("[OK ", pos + 1)) {
    ++wraps;
  }
  size_t bad_wraps = 0;
  for (size_t pos = plain.find("[?? "); pos != std::string::npos;
       pos = plain.find("[?? ", pos + 1)) {
    ++bad_wraps;
  }
  EXPECT_EQ(wraps + bad_wraps, 3u);
  // The raw words survive inside the wrappers.
  EXPECT_NE(plain.find("three"), std::string::npos);
  EXPECT_NE(plain.find("one"), std::string::npos);
}

TEST(MarkupSpanTest, PercentClaimSpanCoversNumberOnly) {
  MarkupFixture f;
  auto doc = text::ParseDocument(
      "Exactly 75 percent of the rows have a kind of red.");
  ASSERT_TRUE(doc.ok());
  auto report = Check(f.database, *doc);
  ASSERT_EQ(report.verdicts.size(), 1u);
  std::string html = RenderMarkup(*doc, report, MarkupStyle::kHtml);
  // The span wraps "75", not the word "percent".
  EXPECT_NE(html.find(">75</span> percent"), std::string::npos) << html;
}

TEST(MarkupSpanTest, MultiTokenNumberFullyWrapped) {
  MarkupFixture f;
  auto doc = text::ParseDocument(
      "The total score reached 100 across all rows.");
  ASSERT_TRUE(doc.ok());
  auto report = Check(f.database, *doc);
  std::string plain = RenderMarkup(*doc, report, MarkupStyle::kPlain);
  EXPECT_TRUE(plain.find("[OK 100]") != std::string::npos ||
              plain.find("[?? 100]") != std::string::npos)
      << plain;
}

TEST(MarkupSpanTest, StylesShareStructure) {
  MarkupFixture f;
  auto doc = text::ParseDocument("The table lists 4 rows in total.");
  auto report = Check(f.database, *doc);
  std::string plain = RenderMarkup(*doc, report, MarkupStyle::kPlain);
  std::string ansi = RenderMarkup(*doc, report, MarkupStyle::kAnsi);
  std::string html = RenderMarkup(*doc, report, MarkupStyle::kHtml);
  // Stripped of wrappers, all three styles carry the same sentence.
  EXPECT_NE(plain.find("rows in total"), std::string::npos);
  EXPECT_NE(ansi.find("rows in total"), std::string::npos);
  EXPECT_NE(html.find("rows in total"), std::string::npos);
}

TEST(MarkupSpanTest, FlaggedAppendixListsBestQuery) {
  MarkupFixture f;
  auto doc = text::ParseDocument("The stats table lists 9 rows in total.");
  auto report = Check(f.database, *doc);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_TRUE(report.verdicts[0].likely_erroneous);
  std::string plain = RenderMarkup(*doc, report, MarkupStyle::kPlain);
  EXPECT_NE(plain.find("!! claim"), std::string::npos);
  EXPECT_NE(plain.find("best query:"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace aggchecker
