#include "util/rounding.h"

#include <gtest/gtest.h>

#include <cmath>

namespace aggchecker {
namespace {

using rounding::RoundsTo;
using rounding::RoundToSignificant;
using rounding::SignificantDigitsOf;
using rounding::SignificantDigitsOfLiteral;

TEST(RoundingTest, RoundToSignificantBasics) {
  EXPECT_DOUBLE_EQ(RoundToSignificant(0.1337, 2), 0.13);
  EXPECT_DOUBLE_EQ(RoundToSignificant(1337.0, 2), 1300.0);
  EXPECT_DOUBLE_EQ(RoundToSignificant(1350.0, 2), 1400.0);  // round half up
  EXPECT_DOUBLE_EQ(RoundToSignificant(0.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(RoundToSignificant(-13.6, 2), -14.0);
  EXPECT_DOUBLE_EQ(RoundToSignificant(9.99, 1), 10.0);
}

TEST(RoundingTest, SignificantDigitsOfDouble) {
  EXPECT_EQ(SignificantDigitsOf(4.0), 1);
  EXPECT_EQ(SignificantDigitsOf(63.0), 2);
  EXPECT_EQ(SignificantDigitsOf(13.6), 3);
  EXPECT_EQ(SignificantDigitsOf(1300.0), 2);  // trailing zeros placeholders
  EXPECT_EQ(SignificantDigitsOf(0.005), 1);
  EXPECT_EQ(SignificantDigitsOf(0.0), 1);
}

TEST(RoundingTest, SignificantDigitsOfLiteral) {
  EXPECT_EQ(SignificantDigitsOfLiteral("13.60"), 4);
  EXPECT_EQ(SignificantDigitsOfLiteral("1,200"), 2);
  EXPECT_EQ(SignificantDigitsOfLiteral("42"), 2);
  EXPECT_EQ(SignificantDigitsOfLiteral("-7"), 1);
  EXPECT_FALSE(SignificantDigitsOfLiteral("abc").has_value());
  EXPECT_FALSE(SignificantDigitsOfLiteral("1.2.3").has_value());
  EXPECT_FALSE(SignificantDigitsOfLiteral("").has_value());
}

// The paper's erroneous-claim table (Table 9): 14 claimed as 13 is wrong,
// 63 claimed as 64 is wrong, 4 claimed as "four" (i.e. 4) is right.
TEST(RoundingTest, PaperTable9Examples) {
  EXPECT_FALSE(RoundsTo(14.0, 13.0));  // self-taught percentage typo
  EXPECT_FALSE(RoundsTo(63.0, 64.0));  // candidate count off by one
  EXPECT_TRUE(RoundsTo(4.0, 4.0));
}

TEST(RoundingTest, ExactMatchAlwaysRounds) {
  EXPECT_TRUE(RoundsTo(0.0, 0.0));
  EXPECT_TRUE(RoundsTo(123.456, 123.456));
  EXPECT_TRUE(RoundsTo(-5.0, -5.0));
}

TEST(RoundingTest, RoundsToClaimPrecision) {
  // 13.6% may be claimed as "14 percent" (1-2 significant digits).
  EXPECT_TRUE(RoundsTo(13.6, 14.0));
  // 41.3% claimed as "41 percent".
  EXPECT_TRUE(RoundsTo(41.3, 41.0));
  // 0.847 claimed as "0.85".
  EXPECT_TRUE(RoundsTo(0.847, 0.85));
  // 1234 claimed as "1200".
  EXPECT_TRUE(RoundsTo(1234.0, 1200.0));
  // but 1234 is NOT "1300".
  EXPECT_FALSE(RoundsTo(1234.0, 1300.0));
}

TEST(RoundingTest, SignMismatchNeverRounds) {
  EXPECT_FALSE(RoundsTo(-5.0, 5.0));
  EXPECT_FALSE(RoundsTo(5.0, -5.0));
}

TEST(RoundingTest, NonFiniteNeverRounds) {
  EXPECT_FALSE(RoundsTo(std::nan(""), 1.0));
  EXPECT_FALSE(RoundsTo(1.0, std::nan("")));
  EXPECT_FALSE(RoundsTo(INFINITY, INFINITY));
}

// Property sweep: for any value and digits, rounding the rounded value again
// at the same precision is a fixed point.
class RoundingFixpointTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(RoundingFixpointTest, RoundingIsIdempotent) {
  auto [value, digits] = GetParam();
  double once = RoundToSignificant(value, digits);
  double twice = RoundToSignificant(once, digits);
  EXPECT_DOUBLE_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundingFixpointTest,
    ::testing::Combine(::testing::Values(0.0, 0.123456, 1.5, 99.99, 1234.5678,
                                         -7.25, 1e6, 3.0e-4),
                       ::testing::Values(1, 2, 3, 5, 10)));

// Property: a value always RoundsTo its own rounding at the precision the
// rounded literal carries.
class RoundsToSelfTest : public ::testing::TestWithParam<double> {};

TEST_P(RoundsToSelfTest, ValueRoundsToItsRounding) {
  double value = GetParam();
  for (int digits = 1; digits <= 6; ++digits) {
    double rounded = RoundToSignificant(value, digits);
    // The rounded form has at most `digits` significant digits, so checking
    // against it must succeed.
    EXPECT_TRUE(RoundsTo(value, rounded))
        << value << " should round to " << rounded;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RoundsToSelfTest,
                         ::testing::Values(0.001234, 0.5, 1.0, 13.6, 41.37,
                                           63.0, 123.456, 9876.54321, 1e5));

// The probe-soundness property behind magnitude pruning (DESIGN.md §17):
// MatchableInterval(claimed) must contain EVERY finite result that Matches
// the claim, in every rounding mode — an excluded matching result would be
// a wrong kill. Deterministic LCG sweep over results near and far from a
// grid of claimed values.
TEST(MatchableIntervalTest, ContainsEveryMatchingResult) {
  const double claims[] = {0.0,   0.001234, 0.5,  1.0,    13.6,  41.37,
                           63.0,  99.99,    100., 1300.0, -7.25, -0.005,
                           1e6,   3.0e-4,   9876.54321};
  const rounding::RoundingMode modes[] = {
      rounding::RoundingMode::kSignificantDigits,
      rounding::RoundingMode::kExact,
      rounding::RoundingMode::kRelativeTolerance};
  uint64_t lcg = 0x9e3779b97f4a7c15ull;
  auto next_unit = [&lcg] {  // deterministic uniform in [0, 1)
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(lcg >> 11) / 9007199254740992.0;
  };
  for (double claimed : claims) {
    for (rounding::RoundingMode mode : modes) {
      rounding::MatchInterval interval =
          rounding::MatchableInterval(claimed, mode, 0.05);
      for (int i = 0; i < 2000; ++i) {
        // Mix of nearby results (claims only match close values) and a
        // wide magnitude sweep to probe the interval edges.
        double spread = i % 2 == 0 ? 0.2 : 4.0;
        double r = claimed + (next_unit() * 2.0 - 1.0) *
                                 spread * (std::fabs(claimed) + 1.0);
        if (!std::isfinite(r)) continue;
        if (rounding::Matches(r, claimed, mode, 0.05)) {
          EXPECT_FALSE(interval.empty())
              << "claimed=" << claimed << " r=" << r;
          EXPECT_GE(r, interval.lo) << "claimed=" << claimed;
          EXPECT_LE(r, interval.hi) << "claimed=" << claimed;
        }
      }
    }
  }
}

// Non-finite claims match nothing (Matches rejects them), so their
// matchable interval is empty — the probe then prunes every candidate the
// magnitude family can bound, which is sound precisely because no result
// can ever match.
TEST(MatchableIntervalTest, NonFiniteClaimYieldsEmptyInterval) {
  for (double claimed : {std::nan(""), HUGE_VAL, -HUGE_VAL}) {
    rounding::MatchInterval interval = rounding::MatchableInterval(
        claimed, rounding::RoundingMode::kSignificantDigits, 0.05);
    EXPECT_TRUE(interval.empty());
  }
}

}  // namespace
}  // namespace aggchecker
