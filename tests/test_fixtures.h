#pragma once

// Shared fixtures for db-layer tests: a small single-table database modeled
// on the paper's NFL-suspensions running example, and a two-table PK-FK
// database for join tests.

#include <string>
#include <vector>

#include "db/database.h"
#include "db/query.h"
#include "util/csv.h"

namespace aggchecker {
namespace testing_fixtures {

/// CSV mirroring the paper's Figure 2(a) example: suspensions with games
/// ("indef" for lifetime bans) and categories.
inline const char* kNflCsv =
    "Name,Team,Games,Category\n"
    "A,ARI,indef,substance abuse repeated offense\n"
    "B,ATL,indef,substance abuse repeated offense\n"
    "C,BAL,indef,substance abuse repeated offense\n"
    "D,BUF,indef,gambling\n"
    "E,CAR,16,substance abuse\n"
    "F,CHI,8,personal conduct\n"
    "G,CIN,4,personal conduct\n"
    "H,CLE,4,substance abuse\n"
    "I,DAL,2,personal conduct\n"
    "J,DEN,1,substance abuse\n";

inline db::Database MakeNflDatabase() {
  auto data = csv::Parse(kNflCsv);
  auto table = db::Table::FromCsv("nflsuspensions", *data);
  db::Database database("nfl");
  (void)database.AddTable(std::move(*table));
  return database;
}

/// Two tables joined by a PK-FK edge: orders.customer_id -> customers.id.
inline db::Database MakeOrdersDatabase() {
  db::Database database("shop");
  {
    db::Table customers("customers");
    (void)customers.AddColumn("id", db::ValueType::kLong);
    (void)customers.AddColumn("region", db::ValueType::kString);
    (void)customers.AddRow({db::Value(int64_t{1}), db::Value("east")});
    (void)customers.AddRow({db::Value(int64_t{2}), db::Value("west")});
    (void)customers.AddRow({db::Value(int64_t{3}), db::Value("east")});
    (void)database.AddTable(std::move(customers));
  }
  {
    db::Table orders("orders");
    (void)orders.AddColumn("id", db::ValueType::kLong);
    (void)orders.AddColumn("customer_id", db::ValueType::kLong);
    (void)orders.AddColumn("amount", db::ValueType::kDouble);
    (void)orders.AddRow({db::Value(int64_t{10}), db::Value(int64_t{1}),
                         db::Value(5.0)});
    (void)orders.AddRow({db::Value(int64_t{11}), db::Value(int64_t{1}),
                         db::Value(7.5)});
    (void)orders.AddRow({db::Value(int64_t{12}), db::Value(int64_t{2}),
                         db::Value(2.5)});
    (void)orders.AddRow({db::Value(int64_t{13}), db::Value(int64_t{3}),
                         db::Value(10.0)});
    (void)orders.AddRow({db::Value(int64_t{14}), db::Value(int64_t{9}),
                         db::Value(99.0)});  // dangling FK, drops in join
    (void)database.AddTable(std::move(orders));
  }
  (void)database.AddForeignKey({"orders", "customer_id"},
                               {"customers", "id"});
  return database;
}

inline db::SimpleAggregateQuery CountStar(
    const std::string& table, std::vector<db::Predicate> preds = {}) {
  db::SimpleAggregateQuery q;
  q.fn = db::AggFn::kCount;
  q.agg_column = db::ColumnRef{table, ""};
  q.predicates = std::move(preds);
  return q;
}

}  // namespace testing_fixtures
}  // namespace aggchecker
