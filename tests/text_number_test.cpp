#include "text/number_parser.h"

#include <gtest/gtest.h>

namespace aggchecker {
namespace text {
namespace {

std::vector<ParsedNumber> Parse(const std::string& sentence) {
  return FindNumbers(sentence, ir::TokenizeWithOffsets(sentence));
}

TEST(NumberParserTest, DigitLiterals) {
  auto nums = Parse("There were 64 candidates and 1,200 donors.");
  ASSERT_EQ(nums.size(), 2u);
  EXPECT_DOUBLE_EQ(nums[0].value, 64);
  EXPECT_DOUBLE_EQ(nums[1].value, 1200);
  EXPECT_FALSE(nums[0].is_percent);
  EXPECT_FALSE(nums[0].from_words);
}

TEST(NumberParserTest, DecimalsAndPercentSign) {
  auto nums = Parse("Exactly 13.6% said yes.");
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_DOUBLE_EQ(nums[0].value, 13.6);
  EXPECT_TRUE(nums[0].is_percent);
}

TEST(NumberParserTest, PercentWord) {
  auto nums = Parse("About 41 percent of fliers agreed.");
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_DOUBLE_EQ(nums[0].value, 41);
  EXPECT_TRUE(nums[0].is_percent);
}

TEST(NumberParserTest, NumberWords) {
  auto nums = Parse("There were only four previous lifetime bans.");
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_DOUBLE_EQ(nums[0].value, 4);
  EXPECT_TRUE(nums[0].from_words);
}

TEST(NumberParserTest, MultipleWordsInOneSentence) {
  auto nums = Parse("Three were for substance abuse, one was for gambling.");
  ASSERT_EQ(nums.size(), 2u);
  EXPECT_DOUBLE_EQ(nums[0].value, 3);
  EXPECT_DOUBLE_EQ(nums[1].value, 1);
}

TEST(NumberParserTest, CompoundNumberWords) {
  auto nums = Parse("twenty-one players and two hundred fans");
  ASSERT_EQ(nums.size(), 2u);
  EXPECT_DOUBLE_EQ(nums[0].value, 21);
  EXPECT_DOUBLE_EQ(nums[1].value, 200);
}

TEST(NumberParserTest, ScaleWords) {
  auto nums = Parse("They spent 1.5 million dollars and three thousand.");
  ASSERT_EQ(nums.size(), 2u);
  EXPECT_DOUBLE_EQ(nums[0].value, 1.5e6);
  EXPECT_DOUBLE_EQ(nums[1].value, 3000);
}

TEST(NumberParserTest, YearsFlagged) {
  auto nums = Parse("In 2016 there were 12 bans.");
  ASSERT_EQ(nums.size(), 2u);
  EXPECT_TRUE(nums[0].looks_like_year);
  EXPECT_FALSE(nums[1].looks_like_year);
}

TEST(NumberParserTest, OrdinalsFlagged) {
  auto nums = Parse("The 3rd time and the fourth attempt.");
  ASSERT_EQ(nums.size(), 2u);
  EXPECT_TRUE(nums[0].is_ordinal);
  EXPECT_TRUE(nums[1].is_ordinal);
}

TEST(NumberParserTest, TokenSpansCorrect) {
  std::string s = "Only four bans happened.";
  auto tokens = ir::TokenizeWithOffsets(s);
  auto nums = FindNumbers(s, tokens);
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_EQ(tokens[nums[0].token_begin].text, "four");
  EXPECT_EQ(nums[0].token_end, nums[0].token_begin + 1);
}

TEST(NumberParserTest, NoNumbers) {
  EXPECT_TRUE(Parse("No numeric content here at all.").empty());
}

TEST(NumberParserTest, ScaleWordAloneNotANumber) {
  EXPECT_TRUE(Parse("A hundred reasons?").empty() ||
              Parse("A hundred reasons?").size() == 0u);
  // "millions of fans" — plural scale word is not parsed as a value.
  EXPECT_TRUE(Parse("millions of fans").empty());
}

TEST(ParseNumericLiteralTest, Basics) {
  EXPECT_DOUBLE_EQ(*ParseNumericLiteral("1,200"), 1200.0);
  EXPECT_DOUBLE_EQ(*ParseNumericLiteral("13.6"), 13.6);
  EXPECT_FALSE(ParseNumericLiteral("abc").has_value());
  EXPECT_FALSE(ParseNumericLiteral("12ab").has_value());
}


TEST(NumberParserTest, FractionPhrases) {
  auto nums = Parse("Half of the fliers agreed.");
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_DOUBLE_EQ(nums[0].value, 50);
  EXPECT_TRUE(nums[0].is_percent);
  EXPECT_TRUE(nums[0].is_fraction);

  nums = Parse("About a third of respondents are self-taught.");
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_DOUBLE_EQ(nums[0].value, 33);

  nums = Parse("Two-thirds of the donations came from ohio.");
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_DOUBLE_EQ(nums[0].value, 67);

  nums = Parse("A quarter of all songs were jazz.");
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_DOUBLE_EQ(nums[0].value, 25);
}

TEST(NumberParserTest, RatioPhrases) {
  auto nums = Parse("One in five developers works remote.");
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_DOUBLE_EQ(nums[0].value, 20);
  EXPECT_TRUE(nums[0].is_percent);
  EXPECT_TRUE(nums[0].is_fraction);

  nums = Parse("one in 10 responses mentioned pay");
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_DOUBLE_EQ(nums[0].value, 10);
}

TEST(NumberParserTest, OrdinalsNotMistakenForFractions) {
  // "the third attempt" has no "of": stays an ordinal.
  auto nums = Parse("The third attempt failed.");
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_TRUE(nums[0].is_ordinal);
  EXPECT_FALSE(nums[0].is_fraction);
  // "the third of May" is date-ish but rare; the "of" reading wins and the
  // detector's percent context sorts it out downstream.
}

TEST(NumberParserTest, CardinalBeforeOfNotAFraction) {
  auto nums = Parse("Four of the suspensions were long.");
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_DOUBLE_EQ(nums[0].value, 4);
  EXPECT_FALSE(nums[0].is_fraction);
  EXPECT_FALSE(nums[0].is_percent);
}

}  // namespace
}  // namespace text
}  // namespace aggchecker
