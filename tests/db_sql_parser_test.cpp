#include "db/sql_parser.h"

#include <gtest/gtest.h>

#include "db/executor.h"
#include "test_fixtures.h"

namespace aggchecker {
namespace db {
namespace {

using testing_fixtures::MakeNflDatabase;
using testing_fixtures::MakeOrdersDatabase;

class SqlParserTest : public ::testing::Test {
 protected:
  SqlParserTest() : nfl_(MakeNflDatabase()), shop_(MakeOrdersDatabase()) {}

  SimpleAggregateQuery Parse(const std::string& sql,
                             const Database& database) {
    auto q = ParseSql(sql, database);
    EXPECT_TRUE(q.ok()) << sql << ": " << q.status().ToString();
    return q.ok() ? *q : SimpleAggregateQuery{};
  }

  Database nfl_;
  Database shop_;
};

TEST_F(SqlParserTest, CountStarWithPredicate) {
  auto q = Parse(
      "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef'", nfl_);
  EXPECT_EQ(q.fn, AggFn::kCount);
  EXPECT_TRUE(q.is_star());
  ASSERT_EQ(q.predicates.size(), 1u);
  EXPECT_EQ(q.predicates[0].column.column, "Games");
  EXPECT_EQ(q.predicates[0].value.ToString(), "indef");
  // Executes correctly end to end.
  QueryExecutor exec(&nfl_);
  EXPECT_DOUBLE_EQ(exec.Execute(q)->value(), 4.0);
}

TEST_F(SqlParserTest, CaseInsensitiveKeywordsAndNames) {
  auto q = Parse("select COUNT(*) from NFLSUSPENSIONS where games = 'indef'",
                 nfl_);
  EXPECT_EQ(q.predicates[0].column.table, "nflsuspensions");
  EXPECT_EQ(q.predicates[0].column.column, "Games");  // canonical casing
}

TEST_F(SqlParserTest, MultiplePredicatesWithAnd) {
  auto q = Parse(
      "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef' AND "
      "Category = 'gambling'",
      nfl_);
  ASSERT_EQ(q.predicates.size(), 2u);
}

TEST_F(SqlParserTest, AggregateFunctions) {
  EXPECT_EQ(Parse("SELECT Sum(amount) FROM orders", shop_).fn, AggFn::kSum);
  EXPECT_EQ(Parse("SELECT Avg(amount) FROM orders", shop_).fn, AggFn::kAvg);
  EXPECT_EQ(Parse("SELECT Average(amount) FROM orders", shop_).fn,
            AggFn::kAvg);
  EXPECT_EQ(Parse("SELECT Min(amount) FROM orders", shop_).fn, AggFn::kMin);
  EXPECT_EQ(Parse("SELECT Max(amount) FROM orders", shop_).fn, AggFn::kMax);
  EXPECT_EQ(Parse("SELECT Percentage(region) FROM customers", shop_).fn,
            AggFn::kPercentage);
}

TEST_F(SqlParserTest, CountDistinctSpellings) {
  auto a = Parse("SELECT CountDistinct(Team) FROM nflsuspensions", nfl_);
  auto b = Parse("SELECT Count(DISTINCT Team) FROM nflsuspensions", nfl_);
  EXPECT_EQ(a.fn, AggFn::kCountDistinct);
  EXPECT_TRUE(a == b);
}

TEST_F(SqlParserTest, NumericLiterals) {
  auto q = Parse("SELECT Count(*) FROM orders WHERE customer_id = 2", shop_);
  EXPECT_EQ(q.predicates[0].value, Value(int64_t{2}));
  QueryExecutor exec(&shop_);
  EXPECT_DOUBLE_EQ(exec.Execute(q)->value(), 1.0);
}

TEST_F(SqlParserTest, QualifiedAndJoinedColumns) {
  auto q = Parse(
      "SELECT Sum(orders.amount) FROM orders E-JOIN customers WHERE "
      "customers.region = 'east'",
      shop_);
  EXPECT_EQ(q.agg_column.table, "orders");
  EXPECT_EQ(q.predicates[0].column.table, "customers");
  QueryExecutor exec(&shop_);
  EXPECT_DOUBLE_EQ(exec.Execute(q)->value(), 22.5);
}

TEST_F(SqlParserTest, UnqualifiedColumnResolvedAcrossTables) {
  auto q = Parse("SELECT Count(*) FROM orders WHERE region = 'west'", shop_);
  EXPECT_EQ(q.predicates[0].column.table, "customers");
}

TEST_F(SqlParserTest, EscapedQuoteInLiteral) {
  auto q = ParseSql(
      "SELECT Count(*) FROM nflsuspensions WHERE Name = 'O''Brien'", nfl_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->predicates[0].value.ToString(), "O'Brien");
}

TEST_F(SqlParserTest, RoundTripWithToSql) {
  // Every query our executor supports renders via ToSql() and parses back
  // to an equal query.
  struct Case {
    std::string sql;
    const Database* database;
  };
  std::vector<Case> cases = {
      {"SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef'", &nfl_},
      {"SELECT CountDistinct(Team) FROM nflsuspensions", &nfl_},
      {"SELECT Average(amount) FROM orders WHERE region = 'east'", &shop_},
  };
  for (const auto& c : cases) {
    auto q = Parse(c.sql, *c.database);
    auto reparsed = ParseSql(q.ToSql(), *c.database);
    ASSERT_TRUE(reparsed.ok()) << q.ToSql() << ": "
                               << reparsed.status().ToString();
    EXPECT_TRUE(*reparsed == q) << q.ToSql();
  }
}

TEST_F(SqlParserTest, Errors) {
  EXPECT_FALSE(ParseSql("", nfl_).ok());
  EXPECT_FALSE(ParseSql("DELETE FROM nflsuspensions", nfl_).ok());
  EXPECT_FALSE(ParseSql("SELECT Wat(*) FROM nflsuspensions", nfl_).ok());
  EXPECT_FALSE(ParseSql("SELECT Count(*) FROM nope", nfl_).ok());
  EXPECT_FALSE(
      ParseSql("SELECT Count(*) FROM nflsuspensions WHERE nope = 'x'",
               nfl_).ok());
  EXPECT_FALSE(
      ParseSql("SELECT Count(*) FROM nflsuspensions WHERE Games = ", nfl_)
          .ok());
  EXPECT_FALSE(ParseSql(
                   "SELECT Count(*) FROM nflsuspensions WHERE Games = 'x",
                   nfl_)
                   .ok());
  EXPECT_FALSE(ParseSql("SELECT Count(*) FROM nflsuspensions extra", nfl_)
                   .ok());
  // Ambiguous unqualified column (id exists in both shop tables).
  EXPECT_FALSE(
      ParseSql("SELECT Count(*) FROM orders WHERE id = 1", shop_).ok());
  // DISTINCT with a non-count function.
  EXPECT_FALSE(
      ParseSql("SELECT Sum(DISTINCT amount) FROM orders", shop_).ok());
}

TEST_F(SqlParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(
      ParseSql("SELECT Count(*) FROM nflsuspensions;", nfl_).ok());
}

}  // namespace
}  // namespace db
}  // namespace aggchecker
