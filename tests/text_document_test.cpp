#include "text/document.h"

#include <gtest/gtest.h>

#include "text/dependency_proxy.h"

namespace aggchecker {
namespace text {
namespace {

constexpr const char* kSampleHtml = R"(
<h1>The NFL's Uneven History Of Punishing Domestic Violence</h1>
<h2>Lifetime bans</h2>
<p>There were only four previous lifetime bans in my database. Three were
for repeated substance abuse, one was for gambling.</p>
<h3>Details</h3>
<p>The gambling ban dates back decades.</p>
<h2>Shorter suspensions</h2>
<p>Most suspensions were shorter. The typical ban was 4 games.</p>
)";

TEST(DocumentParserTest, HtmlStructure) {
  auto doc = ParseDocument(kSampleHtml);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->title(),
            "The NFL's Uneven History Of Punishing Domestic Violence");
  ASSERT_EQ(doc->sections().size(), 3u);
  EXPECT_EQ(doc->section(0).headline, "Lifetime bans");
  EXPECT_EQ(doc->section(1).headline, "Details");
  EXPECT_EQ(doc->section(1).parent, 0);
  EXPECT_EQ(doc->section(2).headline, "Shorter suspensions");
  EXPECT_EQ(doc->section(2).parent, -1);
  ASSERT_EQ(doc->paragraphs().size(), 3u);
  EXPECT_EQ(doc->paragraph(0).section, 0);
  EXPECT_EQ(doc->paragraph(1).section, 1);
  EXPECT_EQ(doc->paragraph(2).section, 2);
}

TEST(DocumentParserTest, SentencesSplitAndTokenized) {
  auto doc = ParseDocument(kSampleHtml);
  ASSERT_TRUE(doc.ok());
  const auto& para0 = doc->paragraph(0);
  ASSERT_EQ(para0.sentence_indices.size(), 2u);
  const Sentence& s0 = doc->sentence(para0.sentence_indices[0]);
  EXPECT_EQ(s0.index_in_paragraph, 0);
  EXPECT_FALSE(s0.tokens.empty());
  EXPECT_EQ(s0.tokens[0].text, "there");
}

TEST(DocumentParserTest, MarkdownHeadings) {
  auto doc = ParseDocument(
      "# Title\n\n## Section A\nBody text here. More text.\n\n### Sub\n"
      "Sub body.\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->title(), "Title");
  ASSERT_EQ(doc->sections().size(), 2u);
  EXPECT_EQ(doc->section(1).parent, 0);
}

TEST(DocumentParserTest, PlainParagraphsSplitOnBlankLines) {
  auto doc = ParseDocument("First para one. First para two.\n\nSecond.\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->paragraphs().size(), 2u);
  EXPECT_EQ(doc->paragraph(0).sentence_indices.size(), 2u);
  EXPECT_EQ(doc->paragraph(0).section, -1);
}

TEST(DocumentParserTest, MultiLineParagraphJoined) {
  auto doc = ParseDocument("Line one continues\nhere in line two.\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->sentences().size(), 1u);
  EXPECT_EQ(doc->sentence(0).text, "Line one continues here in line two.");
}

TEST(DocumentParserTest, EmptyDocumentRejected) {
  EXPECT_FALSE(ParseDocument("").ok());
  EXPECT_FALSE(ParseDocument("<h1>Only a title</h1>\n").ok());
}

TEST(DocumentNavigationTest, PreviousAndFirstSentence) {
  auto doc = ParseDocument(kSampleHtml);
  ASSERT_TRUE(doc.ok());
  const auto& para0 = doc->paragraph(0);
  int first = para0.sentence_indices[0];
  int second = para0.sentence_indices[1];
  EXPECT_EQ(doc->PreviousSentenceInParagraph(second), first);
  EXPECT_EQ(doc->PreviousSentenceInParagraph(first), -1);
  EXPECT_EQ(doc->ParagraphFirstSentence(second), first);
}

TEST(DocumentNavigationTest, EnclosingSectionsChain) {
  auto doc = ParseDocument(kSampleHtml);
  ASSERT_TRUE(doc.ok());
  // Sentence in the <h3> paragraph: chain = [Details, Lifetime bans].
  int s = doc->paragraph(1).sentence_indices[0];
  auto chain = doc->EnclosingSections(s);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(doc->section(chain[0]).headline, "Details");
  EXPECT_EQ(doc->section(chain[1]).headline, "Lifetime bans");
  // Root-level paragraph has no chain.
  auto parsed = ParseDocument("Loose paragraph here.");
  EXPECT_TRUE(parsed->EnclosingSections(0).empty());
}

TEST(DependencyProxyTest, SameClauseCloserThanAcrossClauses) {
  // The paper's Example 3: 'gambling' must be closer to 'one' than to
  // 'three'.
  DependencyProxy proxy(
      "Three were for repeated substance abuse, one was for gambling.");
  const auto& tokens = proxy.tokens();
  size_t three = 0, one = 0, gambling = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].text == "three") three = i;
    if (tokens[i].text == "one") one = i;
    if (tokens[i].text == "gambling") gambling = i;
  }
  EXPECT_LT(proxy.TreeDistance(one, gambling),
            proxy.TreeDistance(three, gambling));
  // And symmetrically 'substance' is closer to 'three' than to 'one'.
  size_t substance = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].text == "substance") substance = i;
  }
  EXPECT_LT(proxy.TreeDistance(three, substance),
            proxy.TreeDistance(one, substance));
}

TEST(DependencyProxyTest, IdentityAndSymmetry) {
  DependencyProxy proxy("Simple words in one clause here.");
  EXPECT_EQ(proxy.TreeDistance(2, 2), 0);
  EXPECT_EQ(proxy.TreeDistance(1, 4), proxy.TreeDistance(4, 1));
  EXPECT_GE(proxy.TreeDistance(0, 1), 1);
}

TEST(DependencyProxyTest, ClauseSegmentation) {
  DependencyProxy proxy("First part here, second part there.");
  const auto& tokens = proxy.tokens();
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(proxy.clause_of(0), proxy.clause_of(2));
  EXPECT_NE(proxy.clause_of(0), proxy.clause_of(3));
}

TEST(DependencyProxyTest, HyphenJoinedWordsStaySameClause) {
  DependencyProxy proxy("The self-taught developers answered.");
  const auto& tokens = proxy.tokens();
  // "self" and "taught" tokens remain in the same clause.
  size_t self_idx = 0, taught_idx = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].text == "self") self_idx = i;
    if (tokens[i].text == "taught") taught_idx = i;
  }
  EXPECT_EQ(proxy.clause_of(self_idx), proxy.clause_of(taught_idx));
}

TEST(DependencyProxyTest, ConjunctionOpensClause) {
  DependencyProxy proxy("He donated money and she received votes.");
  const auto& tokens = proxy.tokens();
  size_t donated = 0, received = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].text == "donated") donated = i;
    if (tokens[i].text == "received") received = i;
  }
  EXPECT_NE(proxy.clause_of(donated), proxy.clause_of(received));
}

}  // namespace
}  // namespace text
}  // namespace aggchecker
