#include "ir/inverted_index.h"

#include <gtest/gtest.h>

#include "ir/synonyms.h"
#include "ir/word_splitter.h"

namespace aggchecker {
namespace ir {
namespace {

InvertedIndex MakeSmallIndex() {
  InvertedIndex index;
  // Query-fragment-like documents.
  index.AddDocument({{"games", 1.0}, {"indef", 1.0}, {"lifetime", 1.0},
                     {"ban", 1.0}});                        // doc 0
  index.AddDocument({{"category", 1.0}, {"gambling", 1.0}});  // doc 1
  index.AddDocument({{"category", 1.0}, {"substance", 1.0},
                     {"abuse", 1.0}});                      // doc 2
  index.AddDocument({{"team", 1.0}, {"name", 1.0}});        // doc 3
  return index;
}

TEST(InvertedIndexTest, ExactTermHitRanksFirst) {
  auto index = MakeSmallIndex();
  auto hits = index.Search({{"gambling", 1.0}}, 10);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_id, 1);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(InvertedIndexTest, MultiTermQueryAccumulates) {
  auto index = MakeSmallIndex();
  auto hits = index.Search({{"lifetime", 1.0}, {"bans", 1.0}}, 10);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_id, 0);  // both terms stem-match doc 0
}

TEST(InvertedIndexTest, StemmingMatchesVariants) {
  auto index = MakeSmallIndex();
  // "bans" must match the indexed "ban" via stemming.
  auto hits = index.Search({{"bans", 1.0}}, 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc_id, 0);
}

TEST(InvertedIndexTest, SharedTermsScoreLowerThanRareOnes) {
  auto index = MakeSmallIndex();
  // "category" appears in two docs (low idf); "gambling" in one. A query
  // with both must rank the gambling doc over the other category doc.
  auto hits = index.Search({{"category", 1.0}, {"gambling", 1.0}}, 10);
  ASSERT_GE(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc_id, 1);
}

TEST(InvertedIndexTest, QueryWeightScalesScore) {
  auto index = MakeSmallIndex();
  double low = index.Score({{"gambling", 0.5}}, 1);
  double high = index.Score({{"gambling", 1.0}}, 1);
  EXPECT_GT(high, low);
  EXPECT_GT(low, 0.0);
}

TEST(InvertedIndexTest, NoOverlapNoHits) {
  auto index = MakeSmallIndex();
  EXPECT_TRUE(index.Search({{"zebra", 1.0}}, 10).empty());
  EXPECT_EQ(index.Score({{"zebra", 1.0}}, 0), 0.0);
}

TEST(InvertedIndexTest, TopKTruncates) {
  auto index = MakeSmallIndex();
  auto hits = index.Search({{"category", 1.0}}, 1);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(InvertedIndexTest, ZeroAndNegativeWeightsIgnored) {
  InvertedIndex index;
  index.AddDocument({{"word", 0.0}, {"other", -1.0}, {"real", 1.0}});
  EXPECT_TRUE(index.Search({{"word", 1.0}}, 5).empty());
  EXPECT_FALSE(index.Search({{"real", 1.0}}, 5).empty());
}

TEST(InvertedIndexTest, DuplicateQueryTermsMerge) {
  auto index = MakeSmallIndex();
  double once = index.Score({{"gambling", 2.0}}, 1);
  double twice = index.Score({{"gambling", 1.0}, {"gambling", 1.0}}, 1);
  EXPECT_DOUBLE_EQ(once, twice);
}

TEST(SynonymDictionaryTest, SymmetricGroups) {
  const auto& dict = SynonymDictionary::Default();
  auto lifetime = dict.Lookup("lifetime");
  EXPECT_NE(std::find(lifetime.begin(), lifetime.end(), "indef"),
            lifetime.end());
  auto indef = dict.Lookup("indef");
  EXPECT_NE(std::find(indef.begin(), indef.end(), "lifetime"), indef.end());
}

TEST(SynonymDictionaryTest, UnknownWordEmpty) {
  EXPECT_TRUE(SynonymDictionary::Default().Lookup("qwertyzxcv").empty());
  EXPECT_TRUE(SynonymDictionary::Empty().Lookup("lifetime").empty());
}

TEST(SynonymDictionaryTest, CustomGroupsMerge) {
  SynonymDictionary dict;
  dict.AddGroup({"a", "b"});
  dict.AddGroup({"b", "c"});
  auto b = dict.Lookup("b");
  EXPECT_EQ(b.size(), 2u);  // a and c
  EXPECT_EQ(dict.Lookup("a").size(), 1u);
}

TEST(WordSplitterTest, SeparatorAndCamelCase) {
  const auto& splitter = WordSplitter::Default();
  EXPECT_EQ(splitter.Split("customer_id"),
            (std::vector<std::string>{"customer", "id"}));
  EXPECT_EQ(splitter.Split("TotalSalary"),
            (std::vector<std::string>{"total", "salary"}));
  EXPECT_EQ(splitter.Split("per-capita"),
            (std::vector<std::string>{"per", "capita"}));
}

TEST(WordSplitterTest, DictionarySegmentation) {
  const auto& splitter = WordSplitter::Default();
  // The paper's running-example table name.
  EXPECT_EQ(splitter.Split("nflsuspensions"),
            (std::vector<std::string>{"nfl", "suspensions"}));
  EXPECT_EQ(splitter.Split("totalsalary"),
            (std::vector<std::string>{"total", "salary"}));
}

TEST(WordSplitterTest, UnsplittableKeptWhole) {
  const auto& splitter = WordSplitter::Default();
  EXPECT_EQ(splitter.Split("xyzzyq"), (std::vector<std::string>{"xyzzyq"}));
  EXPECT_EQ(splitter.Split("abc"), (std::vector<std::string>{"abc"}));
}

TEST(WordSplitterTest, DigitBoundaries) {
  const auto& splitter = WordSplitter::Default();
  EXPECT_EQ(splitter.Split("year2016"),
            (std::vector<std::string>{"year", "2016"}));
}

TEST(WordSplitterTest, UpperAbbreviationRun) {
  const auto& splitter = WordSplitter::Default();
  EXPECT_EQ(splitter.Split("GDPGrowth"),
            (std::vector<std::string>{"gdp", "growth"}));
}

}  // namespace
}  // namespace ir
}  // namespace aggchecker
