// Status/Result semantics: the transient/permanent error taxonomy behind
// the self-healing layer (DESIGN.md §13) and Result<T>::value_or's
// move-vs-copy contract.

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "util/status.h"

namespace aggchecker {
namespace {

TEST(StatusTest, TaxonomyOnlyUnavailableIsTransient) {
  EXPECT_TRUE(Status::Unavailable("cache poisoned").IsTransient());
  // Hard errors are permanent: retrying the identical operation cannot
  // plausibly change the outcome.
  EXPECT_FALSE(Status::Internal("invariant broke").IsTransient());
  EXPECT_FALSE(Status::InvalidArgument("bad column").IsTransient());
  EXPECT_FALSE(Status::NotFound("no table").IsTransient());
  EXPECT_FALSE(Status::ParseError("bad csv").IsTransient());
  EXPECT_FALSE(Status::Unsupported("no median").IsTransient());
  EXPECT_FALSE(Status::OutOfRange("rank").IsTransient());
  EXPECT_FALSE(Status::OK().IsTransient());
  // Governor stops are resource-exhausted, NOT transient: the verdict is
  // sticky for the run, a retry would fail its first charge.
  EXPECT_FALSE(Status::DeadlineExceeded("deadline").IsTransient());
  EXPECT_FALSE(Status::BudgetExhausted("rows").IsTransient());
}

TEST(StatusTest, TaxonomyClassesAreDisjoint) {
  EXPECT_TRUE(Status::DeadlineExceeded("d").IsResourceExhausted());
  EXPECT_TRUE(Status::BudgetExhausted("b").IsResourceExhausted());
  EXPECT_FALSE(Status::Unavailable("u").IsResourceExhausted());
  EXPECT_FALSE(Status::Internal("i").IsResourceExhausted());
}

TEST(StatusTest, UnavailableRendersItsCode) {
  Status status = Status::Unavailable("flaky io");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.ToString().find("Unavailable"), std::string::npos);
  EXPECT_NE(status.ToString().find("flaky io"), std::string::npos);
}

/// Counts how many copies were taken along this instance's history.
struct CopyCounter {
  int copies = 0;
  CopyCounter() = default;
  CopyCounter(const CopyCounter& other) : copies(other.copies + 1) {}
  CopyCounter(CopyCounter&& other) noexcept : copies(other.copies) {}
  CopyCounter& operator=(const CopyCounter& other) {
    copies = other.copies + 1;
    return *this;
  }
  CopyCounter& operator=(CopyCounter&& other) noexcept {
    copies = other.copies;
    return *this;
  }
};

TEST(ResultTest, ValueOrMovesOutOfRvalueResult) {
  // Construction moves the temporary in: zero copies on the way into the
  // Result, zero on the way out of the rvalue overload.
  Result<CopyCounter> result(CopyCounter{});
  CopyCounter out = std::move(result).value_or(CopyCounter{});
  EXPECT_EQ(out.copies, 0)
      << "rvalue value_or must move the contained value, not copy it";
}

TEST(ResultTest, ValueOrCopiesFromLvalueResult) {
  Result<CopyCounter> result(CopyCounter{});
  CopyCounter out = result.value_or(CopyCounter{});
  EXPECT_EQ(out.copies, 1) << "lvalue value_or copies exactly once";
  // The contained value is still usable after an lvalue value_or.
  EXPECT_EQ(result.value().copies, 0);
}

TEST(ResultTest, ValueOrMovesFallbackOnError) {
  Result<CopyCounter> error(Status::Internal("boom"));
  CopyCounter from_lvalue = error.value_or(CopyCounter{});
  EXPECT_EQ(from_lvalue.copies, 0) << "fallback is moved, never copied";
  CopyCounter from_rvalue = std::move(error).value_or(CopyCounter{});
  EXPECT_EQ(from_rvalue.copies, 0);
}

TEST(ResultTest, ValueOrReturnsContainedValue) {
  Result<int> ok(42);
  EXPECT_EQ(ok.value_or(7), 42);
  Result<int> bad(Status::NotFound("x"));
  EXPECT_EQ(bad.value_or(7), 7);
  Result<std::string> text(std::string("hello"));
  EXPECT_EQ(std::move(text).value_or("fallback"), "hello");
}

}  // namespace
}  // namespace aggchecker
