// The exhaustive chaos matrix over the compile-time fault-point manifest
// (util/fault_points.h): every manifest point must be registered AND
// executed by the drivers below (a never-executed point is dead chaos
// coverage and fails), and arming any single point at 100% must produce a
// documented outcome — for faults inside an optimized path, that means the
// fallback ladder heals the claim to a verdict bit-identical to the
// fault-free reference, with the recovery recorded and nothing surrendered.
//
// By default the armed-point sweep runs on a bounded sample of the embedded
// articles (the default gate); AGG_CHAOS_MATRIX=full sweeps every article
// (scripts/check.sh chaos-matrix runs that under ASan+UBSan).

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "core/aggchecker.h"
#include "core/fleet_scheduler.h"
#include "corpus/embedded_articles.h"
#include "corpus/fleet_generator.h"
#include "corpus/harness.h"
#include "db/joined_relation.h"
#include "db/relation_cache.h"
#include "snapshot/snapshot.h"
#include "test_fixtures.h"
#include "text/document.h"
#include "util/csv.h"
#include "util/fault_injection.h"
#include "util/fault_points.h"
#include "util/strings.h"

namespace aggchecker {
namespace {

namespace fi = fault_injection;

bool FullMatrix() {
  const char* v = std::getenv("AGG_CHAOS_MATRIX");
  return v != nullptr && std::string(v) == "full";
}

/// Fast recovery for chaos sweeps: no backoff sleeps, same ladder.
core::CheckOptions FastRecoveryOptions() {
  core::CheckOptions options;
  options.recovery.retry.initial_backoff_ms = 0;
  return options;
}

struct RunOutcome {
  Status status;
  core::CheckReport report;
};

RunOutcome RunArticle(const corpus::CorpusCase& test_case,
                      core::CheckOptions options) {
  RunOutcome out;
  test_case.database.relation_cache().Clear();
  auto checker = core::AggChecker::Create(&test_case.database, options);
  if (!checker.ok()) {
    out.status = checker.status();
    return out;
  }
  auto report = checker->Check(test_case.document);
  if (!report.ok()) {
    out.status = report.status();
    return out;
  }
  out.report = std::move(*report);
  return out;
}

/// Exact (hexfloat) rendering of the verdict surface two runs must agree on
/// bit-for-bit. Recovery metadata is deliberately excluded: a healed run
/// records its trip through the ladder, the fault-free reference does not.
std::string VerdictFingerprint(const core::CheckReport& report) {
  std::string out;
  auto bits = [](double v) { return strings::Format("%a", v); };
  for (const auto& v : report.verdicts) {
    out += strings::Format(
        "claim %s cand=%zu correct=%s err=%d partial=%d\n", v.claim.id.c_str(),
        v.total_candidates, bits(v.correctness_probability).c_str(),
        v.likely_erroneous ? 1 : 0, v.partial ? 1 : 0);
    for (const auto& q : v.top_queries) {
      out += strings::Format(
          "  p=%s result=%s match=%d sql=%s\n", bits(q.probability).c_str(),
          q.result.has_value() ? bits(*q.result).c_str() : "none",
          q.matches ? 1 : 0, q.query.ToSql().c_str());
    }
  }
  return out;
}

/// The closed outcome vocabulary of a chaos run (OK is documented: the
/// recovery layer healing or quarantining a fault is the expected path).
bool IsDocumentedOutcome(const Status& status) {
  return status.ok() || status.code() == StatusCode::kInternal ||
         status.code() == StatusCode::kParseError ||
         status.IsResourceExhausted();
}

/// A fleet small enough to generate and schedule in milliseconds; drives
/// the `fleet.generator.emit` and `fleet.schedule.pop` points.
corpus::FleetSpec TinyFleetSpec() {
  corpus::FleetSpec spec;
  spec.seed = 3;
  spec.num_articles = 3;
  spec.num_datasets = 1;
  spec.claims_per_article = 3;
  spec.num_dim_columns = 4;
  spec.num_measure_columns = 2;
  spec.rows_per_dataset = 300;
  spec.dim_cardinality = 6;
  spec.error_rate = 0.2;
  return spec;
}

/// Drivers that together execute every manifest point: CSV ingestion, the
/// merged (vectorized + fingerprints + relation cache) pipeline, the naive
/// pipeline, a multi-table join build, post-build row ingestion
/// (data.ingest.append), an unchanged-data incremental re-check
/// (eval.recheck.splice), a snapshot write/load round trip
/// (snapshot.load.map), and a tiny fleet generate+schedule cycle
/// (fleet.generator.emit / fleet.schedule.pop).
void RunAllDrivers() {
  {
    auto parsed = csv::Parse(testing_fixtures::kNflCsv);  // csv.row
    (void)parsed;
  }
  auto articles = corpus::EmbeddedArticles();
  ASSERT_FALSE(articles.empty());
  const corpus::CorpusCase& article = articles.front();
  (void)RunArticle(article, FastRecoveryOptions());  // merged/default points
  core::CheckOptions naive = FastRecoveryOptions();
  naive.strategy = db::EvalStrategy::kNaive;
  (void)RunArticle(article, naive);  // executor.execute / executor.scan
  auto orders = testing_fixtures::MakeOrdersDatabase();
  auto join = db::JoinedRelation::Build(orders, {"orders", "customers"});
  ASSERT_TRUE(join.ok());  // join.materialize
  (void)corpus::AppendSyntheticRows(&orders, "orders", 1);  // data.ingest.append
  {
    // eval.recheck.splice: with no data change every claim takes the
    // splice path of an incremental re-check.
    auto checker =
        core::AggChecker::Create(&article.database, FastRecoveryOptions());
    ASSERT_TRUE(checker.ok());
    auto prior = checker->Check(article.document);
    ASSERT_TRUE(prior.ok());
    (void)checker->ReCheck(article.document, *prior);
  }
  {
    const std::string path = "chaos_matrix_driver.snap";
    ASSERT_TRUE(
        snapshot::WriteSnapshot(path, article.database, nullptr, nullptr)
            .ok());
    auto loaded = snapshot::LoadSnapshot(path);  // snapshot.load.map
    ASSERT_TRUE(loaded.ok());
    std::remove(path.c_str());
  }
  corpus::FleetCorpus fleet = corpus::GenerateFleet(TinyFleetSpec());
  core::FleetOptions fleet_options;
  fleet_options.check = FastRecoveryOptions();
  (void)core::RunFleet(corpus::FleetDocuments(fleet), fleet_options);
}

// Satellite (a): the manifest is the ground truth. Every manifest point must
// be registered (the macro ran its static initializer), every registered
// point must be in the manifest (no unregistered sites), and — armed with an
// unreachable trigger so hits are counted without firing — every point must
// actually execute under the drivers. A point that never executes is dead
// chaos coverage: the sweep below would silently skip it.
TEST(ChaosMatrixTest, ManifestMatchesRegistryAndEveryPointExecutes) {
  fi::DisarmAll();
  std::vector<std::string> manifest = fi::ManifestPoints();
  ASSERT_FALSE(manifest.empty());
  EXPECT_TRUE(std::is_sorted(manifest.begin(), manifest.end()))
      << "keep util/fault_points.h alphabetized";

  // Arm every manifest point far beyond any real hit count: Trip records
  // the hit but never fires, so the drivers run fault-free while counting.
  fi::FaultSpec count_only;
  count_only.trigger_on_hit = std::numeric_limits<uint64_t>::max();
  for (const std::string& point : manifest) fi::Arm(point, count_only);

  RunAllDrivers();

  std::vector<std::string> registered = fi::RegisteredPoints();
  EXPECT_EQ(registered, manifest)
      << "fault-point registry and manifest drifted apart; update "
         "util/fault_points.h (and scripts/check.sh chaos-matrix greps the "
         "same truth from the source tree)";
  for (const std::string& point : manifest) {
    EXPECT_GT(fi::HitCount(point), 0u)
        << "manifest point never executed by the chaos drivers: " << point;
  }
  fi::DisarmAll();
}

// The matrix itself: each manifest point armed at 100% (permanent
// kInternal), swept over the article sample. Outcomes must stay in the
// documented vocabulary, quarantined claims must degrade to partial (never
// erroneous), and for the three optimized-path points the fallback ladder
// must fully heal the run: verdicts bit-identical to the fault-free
// reference, ladder engaged, nothing surrendered.
TEST(ChaosMatrixTest, EveryManifestPointArmedAtFullRate) {
  fi::DisarmAll();
  auto articles = corpus::EmbeddedArticles();
  ASSERT_FALSE(articles.empty());
  const size_t sample =
      FullMatrix() ? articles.size() : std::min<size_t>(articles.size(), 2);
  // Points whose faults live strictly inside an optimized path with a
  // reference twin below it on the ladder: these must heal completely.
  const std::set<std::string> healed_by_ladder = {
      "cube.scan.vectorized", "plan.fingerprint", "relation.cache.acquire"};
  // Points whose faulted feature degrades in place instead of descending
  // the ladder: a faulted candidate probe simply declines to prune, so the
  // run completes fault-free and bit-identical with no recovery trace.
  const std::set<std::string> degrades_in_place = {"translator.probe"};

  for (size_t a = 0; a < sample; ++a) {
    const corpus::CorpusCase& article = articles[a];
    const RunOutcome reference = RunArticle(article, FastRecoveryOptions());
    ASSERT_TRUE(reference.status.ok())
        << article.name << ": " << reference.status.ToString();
    const std::string reference_fp = VerdictFingerprint(reference.report);

    for (const std::string& point : fi::ManifestPoints()) {
      if (point == "csv.row" || point == "join.materialize" ||
          point == "fleet.generator.emit" || point == "fleet.schedule.pop" ||
          point == "snapshot.load.map") {
        continue;  // not on this driver's path: articles ship parsed,
                   // single-table databases never build joins, the fleet
                   // points have their own quarantine tests below, and
                   // RunArticle never loads a snapshot (the snapshot map
                   // fault has its own rebuild-fallback test below)
      }
      fi::Arm(point);
      RunOutcome outcome = RunArticle(article, FastRecoveryOptions());
      const uint64_t hits = fi::HitCount(point);
      fi::DisarmAll();

      EXPECT_TRUE(IsDocumentedOutcome(outcome.status))
          << article.name << " / " << point << ": "
          << outcome.status.ToString();
      if (hits == 0) continue;  // point not on this article's path

      if (healed_by_ladder.count(point) > 0) {
        ASSERT_TRUE(outcome.status.ok())
            << article.name << " / " << point
            << " should have healed down the ladder: "
            << outcome.status.ToString();
        EXPECT_EQ(VerdictFingerprint(outcome.report), reference_fp)
            << article.name << " / " << point
            << ": healed verdicts must be bit-identical to the reference";
        EXPECT_EQ(outcome.report.NumQuarantined(), 0u)
            << article.name << " / " << point << " surrendered a claim";
        EXPECT_GT(outcome.report.eval_stats.ladder_descents, 0u)
            << article.name << " / " << point << " never engaged the ladder";
        EXPECT_GT(outcome.report.eval_stats.queries_recovered, 0u)
            << article.name << " / " << point << " recorded no recovery";
      } else if (degrades_in_place.count(point) > 0) {
        ASSERT_TRUE(outcome.status.ok())
            << article.name << " / " << point
            << " should have degraded in place: "
            << outcome.status.ToString();
        EXPECT_EQ(VerdictFingerprint(outcome.report), reference_fp)
            << article.name << " / " << point
            << ": degraded verdicts must be bit-identical to the reference";
        EXPECT_EQ(outcome.report.NumQuarantined(), 0u)
            << article.name << " / " << point << " surrendered a claim";
      } else if (outcome.status.ok()) {
        // Permanent fault the ladder cannot shed (it fires on every rung)
        // or a run-level fault: an OK run must show the quarantine trail,
        // and quarantined claims degrade to partial, never erroneous.
        EXPECT_GT(outcome.report.NumQuarantined() +
                      outcome.report.eval_stats.queries_quarantined,
                  0u)
            << article.name << " / " << point
            << " reported success without any failure or quarantine trace";
        for (const auto& verdict : outcome.report.verdicts) {
          if (!verdict.recovery.quarantined) continue;
          EXPECT_TRUE(verdict.partial)
              << article.name << " / " << point
              << ": quarantined claim not partial";
          EXPECT_FALSE(verdict.likely_erroneous)
              << article.name << " / " << point
              << ": quarantined claim flagged erroneous";
        }
      }
    }
  }
}

// Satellite (f): trip_rate 0.5 with a fixed seed makes the vectorized-scan
// fault flaky-but-reproducible and transient — the same-rung retry loop
// must heal at least one claim on the primary configuration (deepest rung
// 0, no ladder descent for that claim), and healed verdicts still match
// the fault-free reference bit-for-bit.
TEST(ChaosMatrixTest, HalfTripRateRecoversOnPrimaryRung) {
  fi::DisarmAll();
  auto articles = corpus::EmbeddedArticles();
  ASSERT_FALSE(articles.empty());
  const corpus::CorpusCase& article = articles.front();
  const RunOutcome reference = RunArticle(article, FastRecoveryOptions());
  ASSERT_TRUE(reference.status.ok());

  fi::FaultSpec spec;
  spec.code = StatusCode::kUnavailable;  // transient: retried before descent
  spec.message = "flaky vectorized scan";
  spec.trip_rate = 0.5;
  spec.seed = 20260808;
  fi::Arm("cube.scan.vectorized", spec);
  RunOutcome outcome = RunArticle(article, FastRecoveryOptions());
  const uint64_t hits = fi::HitCount("cube.scan.vectorized");
  fi::DisarmAll();

  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  ASSERT_GT(hits, 0u);
  EXPECT_EQ(VerdictFingerprint(outcome.report),
            VerdictFingerprint(reference.report));
  EXPECT_GT(outcome.report.eval_stats.recovery_retries, 0u)
      << "a transient fault at 50% must trigger same-rung retries";
  bool healed_on_primary = false;
  for (const auto& verdict : outcome.report.verdicts) {
    if (verdict.recovery.recovered && verdict.recovery.deepest_rung == 0) {
      healed_on_primary = true;
    }
  }
  EXPECT_TRUE(healed_on_primary)
      << "no claim recovered on the primary rung without descending";

  // Determinism of the seeded schedule: the same (seed, hit sequence)
  // trips the same hits, so a rerun reproduces the exact recovery counters.
  fi::Arm("cube.scan.vectorized", spec);
  RunOutcome rerun = RunArticle(article, FastRecoveryOptions());
  fi::DisarmAll();
  ASSERT_TRUE(rerun.status.ok());
  EXPECT_EQ(rerun.report.eval_stats.recovery_retries,
            outcome.report.eval_stats.recovery_retries);
  EXPECT_EQ(rerun.report.eval_stats.ladder_descents,
            outcome.report.eval_stats.ladder_descents);
  EXPECT_EQ(rerun.report.eval_stats.queries_recovered,
            outcome.report.eval_stats.queries_recovered);
}

// Poison-claim quarantine keeps the run alive: a fault that fires on every
// rung (cube materialization runs identically under both cube backends)
// cannot be shed, so its claims are surrendered as quarantined partials —
// the report still arrives, nothing is flagged erroneous on the quarantined
// claims, and a subsequent clean run is untouched.
TEST(ChaosMatrixTest, UnsheddableFaultQuarantinesInsteadOfAborting) {
  fi::DisarmAll();
  auto articles = corpus::EmbeddedArticles();
  ASSERT_FALSE(articles.empty());
  const corpus::CorpusCase& article = articles.front();

  fi::Arm("cube.materialize");
  RunOutcome outcome = RunArticle(article, FastRecoveryOptions());
  fi::DisarmAll();

  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_GT(outcome.report.NumQuarantined(), 0u);
  EXPECT_EQ(outcome.report.NumRecovered(), 0u)
      << "a claim cannot be both healed and quarantined";
  for (const auto& verdict : outcome.report.verdicts) {
    if (!verdict.recovery.quarantined) continue;
    EXPECT_TRUE(verdict.partial);
    EXPECT_FALSE(verdict.likely_erroneous);
    EXPECT_GT(verdict.recovery.attempts, 1u)
        << "quarantine must come after the ladder was actually tried";
  }

  // Nothing sticky: the fault disarmed, the same article verifies cleanly.
  RunOutcome clean = RunArticle(article, FastRecoveryOptions());
  ASSERT_TRUE(clean.status.ok());
  EXPECT_EQ(clean.report.NumQuarantined(), 0u);
}

// A scheduler-pop fault quarantines exactly the popped document: the fault
// is attributed to that document's result slot, every other document drains
// normally with verdicts bit-identical to the fault-free run — the queue
// never stalls on a poisoned item.
TEST(ChaosMatrixTest, FleetPopFaultQuarantinesOneDocumentAlone) {
  fi::DisarmAll();
  corpus::FleetCorpus fleet = corpus::GenerateFleet(TinyFleetSpec());
  auto documents = corpus::FleetDocuments(fleet);
  ASSERT_EQ(documents.size(), 3u);

  core::FleetOptions options;
  options.check = FastRecoveryOptions();
  core::FleetRunResult reference = core::RunFleet(documents, options);
  ASSERT_EQ(reference.documents_failed, 0u);

  fi::FaultSpec spec;
  spec.trigger_on_hit = 2;  // the second pop, wherever it lands
  spec.every_hit = false;
  fi::Arm("fleet.schedule.pop", spec);
  core::FleetRunResult faulted = core::RunFleet(documents, options);
  const uint64_t hits = fi::HitCount("fleet.schedule.pop");
  fi::DisarmAll();

  ASSERT_EQ(hits, documents.size());  // every pop passed the point
  EXPECT_EQ(faulted.documents_failed, 1u);
  size_t failed = 0;
  for (size_t i = 0; i < faulted.documents.size(); ++i) {
    const auto& doc = faulted.documents[i];
    const auto& ref = reference.documents[i];
    if (!doc.status.ok()) {
      ++failed;
      EXPECT_EQ(doc.schedule_position, 1u)
          << "the fault must land on the second-popped document";
      EXPECT_EQ(doc.status.code(), StatusCode::kInternal);
      continue;
    }
    EXPECT_EQ(core::FleetVerdictFingerprint(doc.report),
              core::FleetVerdictFingerprint(ref.report))
        << "surviving document " << i << " diverged from the fault-free run";
  }
  EXPECT_EQ(failed, 1u);
}

// A generator-emit fault drops exactly the faulted article: the corpus
// keeps its remaining articles, counts the drop, and — per-article rng
// streams being independent — every survivor is byte-identical to its
// fault-free twin.
TEST(ChaosMatrixTest, FleetEmitFaultDropsOnlyTheFaultedArticle) {
  fi::DisarmAll();
  const corpus::FleetSpec spec = TinyFleetSpec();
  corpus::FleetCorpus reference = corpus::GenerateFleet(spec);
  ASSERT_EQ(reference.articles.size(), spec.num_articles);
  ASSERT_EQ(reference.articles_dropped, 0u);

  fi::FaultSpec fault;
  fault.trigger_on_hit = 2;  // drop the second article
  fault.every_hit = false;
  fi::Arm("fleet.generator.emit", fault);
  corpus::FleetCorpus faulted = corpus::GenerateFleet(spec);
  fi::DisarmAll();

  ASSERT_EQ(faulted.articles.size(), spec.num_articles - 1);
  EXPECT_EQ(faulted.articles_dropped, 1u);
  // Survivors are the fault-free twins, byte for byte: same name, text,
  // and ground truth as the corresponding article of the reference corpus.
  auto text = [](const corpus::FleetArticle& a) {
    std::string out = a.name + "|" + a.document.title();
    for (const auto& s : a.document.sentences()) out += "|" + s.text;
    for (const auto& g : a.ground_truth) {
      out += strings::Format("|%s=%a/%a/%d", g.query.CanonicalKey().c_str(),
                             g.claimed_value, g.true_value,
                             g.is_erroneous ? 1 : 0);
    }
    return out;
  };
  EXPECT_EQ(text(faulted.articles[0]), text(reference.articles[0]));
  EXPECT_EQ(text(faulted.articles[1]), text(reference.articles[2]));
}

// An armed snapshot-map fault makes every load attempt fail cleanly; the
// harness falls back to a full rebuild with verdicts bit-identical to the
// snapshot-free reference — a poisoned snapshot file can degrade cold-start
// latency, never correctness. Disarmed, the same snapshot loads normally.
TEST(ChaosMatrixTest, SnapshotMapFaultFallsBackToRebuild) {
  fi::DisarmAll();
  auto articles = corpus::EmbeddedArticles();
  ASSERT_FALSE(articles.empty());
  std::vector<corpus::CorpusCase> one;
  one.push_back(std::move(articles.front()));

  ::mkdir("chaos_matrix_snapshots", 0755);
  corpus::SnapshotRunOptions save;
  save.dir = "chaos_matrix_snapshots";
  save.save = true;
  corpus::SnapshotRunStats save_stats;
  auto reference =
      corpus::RunOnCorpus(one, FastRecoveryOptions(), save, &save_stats);
  ASSERT_EQ(reference.reports.size(), 1u);
  ASSERT_EQ(save_stats.cases_saved, 1u);
  const std::string reference_fp = VerdictFingerprint(reference.reports[0]);

  corpus::SnapshotRunOptions load;
  load.dir = save.dir;
  load.load = true;

  fi::Arm("snapshot.load.map");
  corpus::SnapshotRunStats faulted_stats;
  auto faulted =
      corpus::RunOnCorpus(one, FastRecoveryOptions(), load, &faulted_stats);
  const uint64_t hits = fi::HitCount("snapshot.load.map");
  fi::DisarmAll();

  ASSERT_GT(hits, 0u);
  EXPECT_EQ(faulted_stats.cases_loaded, 0u);
  EXPECT_EQ(faulted_stats.cases_rebuilt, 1u);
  ASSERT_EQ(faulted.reports.size(), 1u);
  EXPECT_EQ(VerdictFingerprint(faulted.reports[0]), reference_fp)
      << "the rebuild fallback must be bit-identical to the reference";

  // Disarmed, the same snapshot loads and still reports identically.
  corpus::SnapshotRunStats loaded_stats;
  auto loaded =
      corpus::RunOnCorpus(one, FastRecoveryOptions(), load, &loaded_stats);
  EXPECT_EQ(loaded_stats.cases_loaded, 1u);
  EXPECT_EQ(loaded_stats.cases_rebuilt, 0u);
  ASSERT_EQ(loaded.reports.size(), 1u);
  EXPECT_EQ(VerdictFingerprint(loaded.reports[0]), reference_fp);

  std::remove(
      corpus::SnapshotPathForCase(save.dir, one.front().name).c_str());
}

// A faulted ingestion is atomic: the batch is rejected before anything
// mutates, so the table keeps its row count and data version and every
// version-keyed cache entry stays warm — the next acquire is a hit on the
// same relation object. Disarmed, the same append succeeds, bumps the
// version, and invalidates exactly that relation.
TEST(ChaosMatrixTest, IngestFaultLeavesVersionAndCachesUntouched) {
  fi::DisarmAll();
  auto database = testing_fixtures::MakeOrdersDatabase();
  ResourceGovernor governor;
  std::shared_ptr<const db::JoinedRelation> warm;
  {
    ResourceGovernor::Shard shard(&governor);
    auto rel = database.relation_cache().Acquire(
        database, {"orders", "customers"}, shard);
    ASSERT_TRUE(rel.ok());
    warm = *rel;
  }
  const uint64_t v0 = database.TableVersion("orders");
  const size_t rows0 = database.FindTable("orders")->num_rows();

  fi::Arm("data.ingest.append");
  Status faulted = corpus::AppendSyntheticRows(&database, "orders", 2);
  const uint64_t hits = fi::HitCount("data.ingest.append");
  fi::DisarmAll();

  ASSERT_GT(hits, 0u);
  EXPECT_FALSE(faulted.ok());
  EXPECT_EQ(database.TableVersion("orders"), v0);
  EXPECT_EQ(database.FindTable("orders")->num_rows(), rows0);
  {
    ResourceGovernor::Shard shard(&governor);
    db::RelationCache::AcquireInfo info;
    auto rel = database.relation_cache().Acquire(
        database, {"orders", "customers"}, shard, &info);
    ASSERT_TRUE(rel.ok());
    EXPECT_TRUE(info.hit);
    EXPECT_FALSE(info.built);
    EXPECT_EQ(rel->get(), warm.get())
        << "a rejected append must not withdraw the cached relation";
  }

  ASSERT_TRUE(corpus::AppendSyntheticRows(&database, "orders", 2).ok());
  EXPECT_EQ(database.TableVersion("orders"), v0 + 1);
  {
    ResourceGovernor::Shard shard(&governor);
    db::RelationCache::AcquireInfo info;
    auto rel = database.relation_cache().Acquire(
        database, {"orders", "customers"}, shard, &info);
    ASSERT_TRUE(rel.ok());
    EXPECT_TRUE(info.built)
        << "a successful append must invalidate the relation it touched";
  }
}

// A faulted splice degrades the claim to a full re-evaluation instead of
// trusting the prior verdict: the re-check still succeeds, the report is
// bit-identical to the fault-free splice, and the accounting shows every
// claim re-checked rather than spliced.
TEST(ChaosMatrixTest, SpliceFaultDegradesToReEvaluation) {
  fi::DisarmAll();
  auto articles = corpus::EmbeddedArticles();
  ASSERT_FALSE(articles.empty());
  const corpus::CorpusCase& article = articles.front();
  article.database.relation_cache().Clear();
  auto checker =
      core::AggChecker::Create(&article.database, FastRecoveryOptions());
  ASSERT_TRUE(checker.ok());
  auto prior = checker->Check(article.document);
  ASSERT_TRUE(prior.ok());
  ASSERT_FALSE(prior->verdicts.empty());
  const std::string reference_fp = VerdictFingerprint(*prior);

  // Fault-free with no data change: the whole report splices.
  auto spliced = checker->ReCheck(article.document, *prior);
  ASSERT_TRUE(spliced.ok());
  EXPECT_EQ(spliced->claims_spliced, prior->verdicts.size());
  EXPECT_EQ(spliced->claims_rechecked, 0u);
  EXPECT_EQ(VerdictFingerprint(*spliced), reference_fp);

  fi::Arm("eval.recheck.splice");
  auto degraded = checker->ReCheck(article.document, *prior);
  const uint64_t hits = fi::HitCount("eval.recheck.splice");
  fi::DisarmAll();

  ASSERT_GT(hits, 0u);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->claims_spliced, 0u);
  EXPECT_EQ(degraded->claims_rechecked, prior->verdicts.size());
  EXPECT_EQ(VerdictFingerprint(*degraded), reference_fp)
      << "a degraded re-check must still match the prior verdicts on "
         "unchanged data";
}

}  // namespace
}  // namespace aggchecker
