#include "db/relation_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "db/eval_engine.h"
#include "test_fixtures.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aggchecker {
namespace db {
namespace {

using testing_fixtures::MakeOrdersDatabase;

/// Hexfloat fingerprint of a batch result: bit-identical or nothing.
std::string Fingerprint(const std::vector<std::optional<double>>& results) {
  std::string fp;
  char buf[64];
  for (const auto& r : results) {
    if (r.has_value()) {
      std::snprintf(buf, sizeof(buf), "%a;", *r);
      fp += buf;
    } else {
      fp += "nullopt;";
    }
  }
  return fp;
}

/// Randomized two-table PK-FK database: customers(id, region) and
/// orders(id, customer_id, amount, status), with some dangling FKs.
Database MakeRandomShopDatabase(uint64_t seed) {
  Rng rng(seed);
  Database database("shop");
  const char* kRegions[] = {"east", "west", "north"};
  const char* kStatus[] = {"open", "paid", "void"};
  const int num_customers = static_cast<int>(rng.NextInt(3, 12));
  {
    Table customers("customers");
    (void)customers.AddColumn("id", ValueType::kLong);
    (void)customers.AddColumn("region", ValueType::kString);
    for (int i = 0; i < num_customers; ++i) {
      (void)customers.AddRow(
          {Value(static_cast<int64_t>(i)),
           Value(std::string(kRegions[rng.NextBounded(3)]))});
    }
    (void)database.AddTable(std::move(customers));
  }
  {
    Table orders("orders");
    (void)orders.AddColumn("id", ValueType::kLong);
    (void)orders.AddColumn("customer_id", ValueType::kLong);
    (void)orders.AddColumn("amount", ValueType::kDouble);
    (void)orders.AddColumn("status", ValueType::kString);
    const int num_orders = static_cast<int>(rng.NextInt(20, 80));
    for (int i = 0; i < num_orders; ++i) {
      // ~10% dangling customer ids, dropped by the inner join.
      int64_t cust = rng.NextBounded(10) == 0
                         ? static_cast<int64_t>(num_customers + 100)
                         : static_cast<int64_t>(
                               rng.NextBounded(
                                   static_cast<uint64_t>(num_customers)));
      (void)orders.AddRow(
          {Value(static_cast<int64_t>(i)), Value(cust),
           Value(rng.NextDouble() * 100.0 - 20.0),
           Value(std::string(kStatus[rng.NextBounded(3)]))});
    }
    (void)database.AddTable(std::move(orders));
  }
  (void)database.AddForeignKey({"orders", "customer_id"},
                               {"customers", "id"});
  return database;
}

/// A batch where every query references both tables (predicate on
/// customers.region, aggregate over orders), so every evaluation runs over
/// the same two-table joined relation.
std::vector<SimpleAggregateQuery> MakeJoinBatch() {
  std::vector<SimpleAggregateQuery> batch;
  for (const char* region : {"east", "west", "north", "nowhere"}) {
    SimpleAggregateQuery q;
    q.fn = AggFn::kCount;
    q.agg_column = {"orders", ""};
    q.predicates.push_back(
        {{"customers", "region"}, Value(std::string(region))});
    batch.push_back(q);
    q.fn = AggFn::kSum;
    q.agg_column = {"orders", "amount"};
    batch.push_back(q);
    q.fn = AggFn::kAvg;
    batch.push_back(q);
    q.fn = AggFn::kMin;
    batch.push_back(q);
    q.fn = AggFn::kMax;
    batch.push_back(q);
    q.fn = AggFn::kCountDistinct;
    q.agg_column = {"orders", "status"};
    batch.push_back(q);
    // Two-predicate variant: adds orders.status as a second dimension.
    q.fn = AggFn::kCount;
    q.agg_column = {"orders", ""};
    q.predicates.push_back(
        {{"orders", "status"}, Value(std::string("paid"))});
    batch.push_back(q);
  }
  return batch;
}

/// Property: cache on vs. off is bit-identical for every strategy and
/// thread count, across randomized schemas.
class RelationCacheDiffTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelationCacheDiffTest, CacheOnOffBitIdenticalAcrossStrategies) {
  auto database = MakeRandomShopDatabase(GetParam());
  const auto batch = MakeJoinBatch();

  std::string reference;
  bool have_reference = false;
  for (EvalStrategy strategy : {EvalStrategy::kNaive, EvalStrategy::kMerged,
                                EvalStrategy::kMergedCached}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      for (bool cache_on : {false, true}) {
        database.relation_cache().Clear();
        EvalEngine engine(&database, strategy);
        if (!cache_on) engine.SetRelationCache(nullptr);
        ThreadPool pool(threads);
        if (threads > 1) engine.SetThreadPool(&pool);
        std::string fp = Fingerprint(engine.EvaluateBatch(batch));
        if (!have_reference) {
          reference = fp;
          have_reference = true;
        } else {
          EXPECT_EQ(fp, reference)
              << EvalStrategyName(strategy) << " threads=" << threads
              << " cache=" << (cache_on ? "on" : "off");
        }
        // Cache on: the join materializes once; every further acquisition
        // in the batch is a hit. Cache off: never a hit.
        if (cache_on) {
          EXPECT_EQ(engine.stats().joins_built, 1u);
        } else {
          EXPECT_EQ(engine.stats().join_cache_hits, 0u);
          EXPECT_GE(engine.stats().joins_built, 1u);
        }
      }
    }
  }
}

TEST_P(RelationCacheDiffTest, GovernorChargeTotalsMatchDedupedRebuilds) {
  auto database = MakeRandomShopDatabase(GetParam());
  const auto batch = MakeJoinBatch();
  auto rel = JoinedRelation::Build(database, {"orders", "customers"});
  ASSERT_TRUE(rel.ok());
  const uint64_t join_bytes = rel->ApproxBytes();
  ASSERT_GT(join_bytes, 0u);

  for (EvalStrategy strategy : {EvalStrategy::kNaive, EvalStrategy::kMerged,
                                EvalStrategy::kMergedCached}) {
    GovernorUsage usage[2];
    size_t joins_built[2];
    for (int cache_on = 0; cache_on < 2; ++cache_on) {
      database.relation_cache().Clear();
      EvalEngine engine(&database, strategy);
      if (cache_on == 0) engine.SetRelationCache(nullptr);
      ResourceGovernor governor;  // unlimited: counts, never trips
      engine.SetGovernor(&governor);
      (void)engine.EvaluateBatch(batch);
      usage[cache_on] = governor.usage();
      joins_built[cache_on] = engine.stats().joins_built;
    }
    // Every query in the batch runs over the same two-table relation, so
    // the only memory-charge difference between cache off and on is the
    // deduplicated join rebuilds, each worth exactly `join_bytes`.
    ASSERT_GE(joins_built[0], joins_built[1]) << EvalStrategyName(strategy);
    EXPECT_EQ(usage[0].memory_bytes_charged - usage[1].memory_bytes_charged,
              (joins_built[0] - joins_built[1]) * join_bytes)
        << EvalStrategyName(strategy);
    // Row/group totals are charge-identical — the cache changes join
    // materialization only, never what gets scanned.
    EXPECT_EQ(usage[0].rows_charged, usage[1].rows_charged)
        << EvalStrategyName(strategy);
    EXPECT_EQ(usage[0].cube_groups_charged, usage[1].cube_groups_charged)
        << EvalStrategyName(strategy);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationCacheDiffTest,
                         ::testing::Range(uint64_t{7000}, uint64_t{7008}));

/// Concurrent acquirers of the same relation: one build, N-1 hits, the
/// same shared instance for everyone, and the join's bytes charged to the
/// governor exactly once. Run under tsan via the concurrency label.
TEST(RelationCacheConcurrencyTest, ConcurrentAcquireBuildsOnce) {
  auto database = MakeOrdersDatabase();
  auto direct = JoinedRelation::Build(database, {"orders", "customers"});
  ASSERT_TRUE(direct.ok());
  const uint64_t join_bytes = direct->ApproxBytes();

  constexpr size_t kAcquirers = 8;
  RelationCache cache;
  ResourceGovernor governor;
  std::vector<std::shared_ptr<const JoinedRelation>> acquired(kAcquirers);
  std::vector<RelationCache::AcquireInfo> infos(kAcquirers);
  std::atomic<int> failures{0};
  ThreadPool pool(kAcquirers);
  pool.ParallelFor(0, kAcquirers, [&](size_t i) {
    ResourceGovernor::Shard shard(&governor);
    // Table order varies per acquirer; the canonical key makes them one.
    std::vector<std::string> tables =
        (i % 2 == 0) ? std::vector<std::string>{"orders", "customers"}
                     : std::vector<std::string>{"Customers", "ORDERS"};
    auto rel = cache.Acquire(database, tables, shard, &infos[i]);
    if (!rel.ok()) {
      failures.fetch_add(1);
      return;
    }
    acquired[i] = *rel;
  });

  EXPECT_EQ(failures.load(), 0);
  size_t built = 0, hits = 0;
  for (size_t i = 0; i < kAcquirers; ++i) {
    ASSERT_NE(acquired[i], nullptr) << i;
    EXPECT_EQ(acquired[i], acquired[0]) << i;
    built += infos[i].built ? 1 : 0;
    hits += infos[i].hit ? 1 : 0;
  }
  EXPECT_EQ(built, 1u);
  EXPECT_EQ(hits, kAcquirers - 1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(governor.usage().memory_bytes_charged, join_bytes);
}

/// The per-run charge dedup keys on the governor's run id: a fresh governor
/// (fresh run) re-charges a still-cached relation; the same run never
/// charges it twice.
TEST(RelationCacheTest, ChargesOncePerGovernorRun) {
  auto database = MakeOrdersDatabase();
  RelationCache cache;
  ResourceGovernor first_run;
  {
    ResourceGovernor::Shard shard(&first_run);
    ASSERT_TRUE(cache.Acquire(database, {"orders", "customers"}, shard).ok());
    ASSERT_TRUE(cache.Acquire(database, {"orders", "customers"}, shard).ok());
  }
  const uint64_t charged = first_run.usage().memory_bytes_charged;
  EXPECT_GT(charged, 0u);

  ResourceGovernor second_run;
  {
    ResourceGovernor::Shard shard(&second_run);
    RelationCache::AcquireInfo info;
    ASSERT_TRUE(
        cache.Acquire(database, {"orders", "customers"}, shard, &info).ok());
    EXPECT_TRUE(info.hit);  // still cached — but a new run, so re-charged
  }
  EXPECT_EQ(second_run.usage().memory_bytes_charged, charged);
  EXPECT_EQ(first_run.usage().memory_bytes_charged, charged);
}

/// A memory budget too small for the join: Acquire fails with the stop
/// Status and withdraws the entry, so the cache never holds state the
/// budget could not afford — and a later, larger run rebuilds cleanly.
TEST(RelationCacheTest, BudgetTripWithdrawsEntry) {
  auto database = MakeOrdersDatabase();
  RelationCache cache;
  GovernorLimits tiny;
  tiny.max_memory_bytes = 1;  // any join materialization trips
  ResourceGovernor governor(tiny);
  {
    ResourceGovernor::Shard shard(&governor);
    auto rel = cache.Acquire(database, {"orders", "customers"}, shard);
    ASSERT_FALSE(rel.ok());
    EXPECT_TRUE(rel.status().IsResourceExhausted());
  }
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(governor.exhausted());

  // Already-tripped governor short-circuits before building anything.
  {
    ResourceGovernor::Shard shard(&governor);
    RelationCache::AcquireInfo info;
    auto rel = cache.Acquire(database, {"orders", "customers"}, shard, &info);
    ASSERT_FALSE(rel.ok());
    EXPECT_FALSE(info.built);
    EXPECT_FALSE(info.hit);
  }

  ResourceGovernor roomy;  // unlimited
  {
    ResourceGovernor::Shard shard(&roomy);
    RelationCache::AcquireInfo info;
    auto rel = cache.Acquire(database, {"orders", "customers"}, shard, &info);
    ASSERT_TRUE(rel.ok());
    EXPECT_TRUE(info.built);  // withdrawn entry rebuilt from scratch
  }
  EXPECT_EQ(cache.size(), 1u);
}

/// Unknown tables are a build failure, never cached; the next acquire
/// retries (and fails identically) instead of serving a poisoned entry.
TEST(RelationCacheTest, BuildFailuresAreNotCached) {
  auto database = MakeOrdersDatabase();
  RelationCache cache;
  ResourceGovernor::Shard shard(nullptr);
  EXPECT_FALSE(cache.Acquire(database, {"orders", "ghosts"}, shard).ok());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Acquire(database, {"orders", "ghosts"}, shard).ok());
  auto rel = cache.Acquire(database, {"orders", "customers"}, shard);
  EXPECT_TRUE(rel.ok());
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace db
}  // namespace aggchecker
