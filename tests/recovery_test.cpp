// Engine-level tests of the self-healing layer (DESIGN.md §13): same-rung
// retries for transient faults, the fallback ladder for persistent faults
// in optimized paths, quarantine when every rung fails, the fail-fast
// behavior with recovery disabled, the governor-exhausted guard, and the
// stall watchdog's deterministic core.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "db/eval_engine.h"
#include "db/relation_cache.h"
#include "test_fixtures.h"
#include "util/fault_injection.h"
#include "util/resource_governor.h"
#include "util/retry.h"

namespace aggchecker {
namespace {

namespace fi = fault_injection;
using testing_fixtures::CountStar;

RecoveryOptions FastRecovery() {
  RecoveryOptions options;
  options.retry.initial_backoff_ms = 0;  // keep chaos sweeps sleep-free
  return options;
}

std::vector<db::SimpleAggregateQuery> NflQueries() {
  return {
      CountStar("nflsuspensions",
                {{{"nflsuspensions", "Games"}, db::Value("indef")}}),
      CountStar("nflsuspensions",
                {{{"nflsuspensions", "Category"}, db::Value("gambling")}}),
  };
}

// A persistent fault in the vectorized cube scan must descend exactly one
// rung (the scalar oracle is its bit-identical twin), heal every query, and
// restore the engine's configuration afterwards.
TEST(RecoveryTest, LadderHealsVectorizedCubeFault) {
  fi::DisarmAll();
  auto db = testing_fixtures::MakeNflDatabase();
  auto queries = NflQueries();
  db::EvalEngine reference(&db, db::EvalStrategy::kMergedCached);
  const auto expected = reference.EvaluateBatch(queries);
  ASSERT_TRUE(expected[0].has_value());

  db::EvalEngine engine(&db, db::EvalStrategy::kMergedCached);
  engine.SetRecovery(FastRecovery());
  fi::Arm("cube.scan.vectorized");  // permanent kInternal, every hit
  const auto results = engine.EvaluateBatch(queries);
  fi::DisarmAll();

  EXPECT_EQ(results, expected) << "recovered values must be the true values";
  EXPECT_GE(engine.stats().ladder_descents, 1u);
  EXPECT_EQ(engine.stats().queries_recovered, queries.size());
  EXPECT_EQ(engine.stats().queries_quarantined, 0u);
  EXPECT_EQ(engine.stats().recovery_retries, 0u)
      << "a permanent fault must not burn same-rung retries";
  EXPECT_TRUE(engine.ConsumeFailedQueries().empty());
  EXPECT_TRUE(engine.ConsumeHardError().ok())
      << "a fully healed batch must look fault-free to callers";
  const auto records = engine.ConsumeRecoveryRecords();
  ASSERT_EQ(records.size(), queries.size());
  for (const auto& rec : records) {
    EXPECT_TRUE(rec.recovered);
    EXPECT_EQ(rec.rung, 1u) << db::EvalEngine::RecoveryRungName(rec.rung);
    EXPECT_GT(rec.attempts, 1u);
  }
  // Configuration restored: the next batch runs the primary path again.
  EXPECT_EQ(engine.cube_exec_mode(), db::CubeExecMode::kVectorized);
  EXPECT_TRUE(engine.query_fingerprints());
  EXPECT_NE(engine.relation_cache(), nullptr);
}

// A transient fault that fires once heals by same-rung retry: backoff is
// taken, no ladder rung is engaged, and the record lands on rung 0.
TEST(RecoveryTest, TransientFaultHealsOnPrimaryRung) {
  fi::DisarmAll();
  auto db = testing_fixtures::MakeNflDatabase();
  auto queries = NflQueries();
  db::EvalEngine reference(&db, db::EvalStrategy::kMergedCached);
  const auto expected = reference.EvaluateBatch(queries);

  db::EvalEngine engine(&db, db::EvalStrategy::kMergedCached);
  engine.SetRecovery(FastRecovery());
  fi::FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.message = "momentary scan glitch";
  spec.every_hit = false;  // fires exactly once; the retry runs clean
  fi::Arm("cube.scan.vectorized", spec);
  const auto results = engine.EvaluateBatch(queries);
  fi::DisarmAll();

  EXPECT_EQ(results, expected);
  EXPECT_GE(engine.stats().recovery_retries, 1u);
  EXPECT_EQ(engine.stats().ladder_descents, 0u)
      << "a transient glitch must not descend the ladder";
  EXPECT_GT(engine.stats().queries_recovered, 0u);
  EXPECT_TRUE(engine.ConsumeHardError().ok());
  for (const auto& rec : engine.ConsumeRecoveryRecords()) {
    EXPECT_TRUE(rec.recovered);
    EXPECT_EQ(rec.rung, 0u) << "healed on the primary configuration";
  }
}

// The string-keyed plan rung: a fault at the fingerprint planner fires on
// rungs 0 and 1 (both still plan by fingerprint) and is shed at rung 2.
TEST(RecoveryTest, LadderReachesStringPlanRung) {
  fi::DisarmAll();
  auto db = testing_fixtures::MakeNflDatabase();
  auto queries = NflQueries();
  db::EvalEngine reference(&db, db::EvalStrategy::kMergedCached);
  const auto expected = reference.EvaluateBatch(queries);

  db::EvalEngine engine(&db, db::EvalStrategy::kMergedCached);
  engine.SetRecovery(FastRecovery());
  fi::Arm("plan.fingerprint");
  const auto results = engine.EvaluateBatch(queries);
  fi::DisarmAll();

  EXPECT_EQ(results, expected);
  EXPECT_EQ(engine.stats().queries_recovered, queries.size());
  for (const auto& rec : engine.ConsumeRecoveryRecords()) {
    EXPECT_TRUE(rec.recovered);
    EXPECT_EQ(rec.rung, 2u) << db::EvalEngine::RecoveryRungName(rec.rung);
  }
  EXPECT_TRUE(engine.query_fingerprints()) << "configuration restored";
}

// The fresh-join rung: a fault in the shared relation cache's acquire path
// survives the cube and plan rungs (they still acquire through the cache)
// and is shed only when the ladder drops to private, uncached joins.
TEST(RecoveryTest, LadderReachesFreshJoinRung) {
  fi::DisarmAll();
  auto db = testing_fixtures::MakeOrdersDatabase();
  db.relation_cache().Clear();
  std::vector<db::SimpleAggregateQuery> queries = {CountStar(
      "orders", {{{"customers", "region"}, db::Value(std::string("east"))}})};
  db::EvalEngine reference(&db, db::EvalStrategy::kMergedCached);
  const auto expected = reference.EvaluateBatch(queries);
  ASSERT_TRUE(expected[0].has_value());
  EXPECT_DOUBLE_EQ(*expected[0], 3.0);
  db.relation_cache().Clear();

  db::EvalEngine engine(&db, db::EvalStrategy::kMergedCached);
  engine.SetRecovery(FastRecovery());
  fi::Arm("relation.cache.acquire");
  const auto results = engine.EvaluateBatch(queries);
  fi::DisarmAll();

  EXPECT_EQ(results, expected);
  EXPECT_EQ(engine.stats().queries_recovered, 1u);
  for (const auto& rec : engine.ConsumeRecoveryRecords()) {
    EXPECT_TRUE(rec.recovered);
    EXPECT_EQ(rec.rung, 3u) << db::EvalEngine::RecoveryRungName(rec.rung);
  }
  EXPECT_NE(engine.relation_cache(), nullptr) << "configuration restored";
}

// Raw engines keep the pre-recovery contract: hard errors surface unmasked,
// nothing is retried, failed queries are reported to the caller.
TEST(RecoveryTest, RecoveryDisabledSurfacesHardError) {
  fi::DisarmAll();
  auto db = testing_fixtures::MakeNflDatabase();
  auto queries = NflQueries();
  db::EvalEngine engine(&db, db::EvalStrategy::kMergedCached);
  ASSERT_FALSE(engine.recovery_enabled()) << "raw engines default to OFF";
  fi::Arm("cube.scan.vectorized");
  const auto results = engine.EvaluateBatch(queries);
  fi::DisarmAll();

  for (const auto& r : results) EXPECT_FALSE(r.has_value());
  EXPECT_EQ(engine.stats().queries_recovered, 0u);
  EXPECT_EQ(engine.stats().ladder_descents, 0u);
  EXPECT_EQ(engine.stats().recovery_retries, 0u);
  EXPECT_EQ(engine.ConsumeFailedQueries().size(), queries.size());
  Status error = engine.ConsumeHardError();
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.code(), StatusCode::kInternal);
  EXPECT_TRUE(engine.ConsumeRecoveryRecords().empty());
}

// A poison query that fails on every rung is quarantined alone: its batch
// mates keep their values, the caller learns exactly which index died, and
// the primary hard error is re-raised for attribution.
TEST(RecoveryTest, PoisonQueryQuarantinedAloneOthersSucceed) {
  fi::DisarmAll();
  auto db = testing_fixtures::MakeNflDatabase();
  auto queries = NflQueries();
  db::EvalEngine engine(&db, db::EvalStrategy::kNaive);
  engine.SetRecovery(FastRecovery());
  // Naive execution scans once per query in index order: hit 1 is query 0
  // (passes), every hit from 2 on — including every recovery re-run — is
  // query 1 failing on each rung.
  fi::FaultSpec spec;
  spec.trigger_on_hit = 2;
  fi::Arm("executor.scan", spec);
  const auto results = engine.EvaluateBatch(queries);
  fi::DisarmAll();

  ASSERT_TRUE(results[0].has_value()) << "healthy neighbor lost its value";
  EXPECT_DOUBLE_EQ(*results[0], 4.0);
  EXPECT_FALSE(results[1].has_value());
  EXPECT_EQ(engine.stats().queries_quarantined, 1u);
  EXPECT_EQ(engine.stats().queries_recovered, 0u);
  const auto failed = engine.ConsumeFailedQueries();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], 1u);
  const auto records = engine.ConsumeRecoveryRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].recovered);
  EXPECT_EQ(records[0].query_index, 1u);
  EXPECT_GT(records[0].attempts, 1u) << "the ladder must actually be tried";
  Status error = engine.ConsumeHardError();
  ASSERT_FALSE(error.ok()) << "quarantine must re-raise the primary error";
  EXPECT_EQ(error.code(), StatusCode::kInternal);
}

// Once the governor has tripped, recovery stands down: re-runs would fail
// their first charge, so surviving failures surrender immediately with no
// retries, no descents, and no extra budget burned.
TEST(RecoveryTest, GovernorExhaustedSkipsRecovery) {
  fi::DisarmAll();
  auto db = testing_fixtures::MakeOrdersDatabase();
  db.relation_cache().Clear();
  // Query 0 (single-table, charges no memory) hard-faults at the scan
  // point; query 1's join materialization blows the 1-byte memory budget
  // (memory is inspected immediately, unlike amortized row charges), so
  // the governor is exhausted by the time the batch folds.
  std::vector<db::SimpleAggregateQuery> queries = {
      CountStar("orders",
                {{{"orders", "customer_id"}, db::Value(int64_t{1})}}),
      CountStar("orders",
                {{{"customers", "region"}, db::Value("east")}}),
  };
  db::EvalEngine engine(&db, db::EvalStrategy::kNaive);
  engine.SetRecovery(FastRecovery());
  GovernorLimits limits;
  limits.max_memory_bytes = 1;
  ResourceGovernor governor(limits);
  engine.SetGovernor(&governor);
  fi::FaultSpec spec;
  spec.every_hit = false;  // hit 1 is query 0; query 1 dies in the governor
  fi::Arm("executor.scan", spec);
  const auto results = engine.EvaluateBatch(queries);
  fi::DisarmAll();
  engine.SetGovernor(nullptr);

  ASSERT_TRUE(governor.exhausted());
  EXPECT_FALSE(results[0].has_value());
  EXPECT_FALSE(results[1].has_value());
  EXPECT_EQ(engine.stats().recovery_retries, 0u);
  EXPECT_EQ(engine.stats().ladder_descents, 0u);
  EXPECT_EQ(engine.stats().queries_recovered, 0u);
  const auto failed = engine.ConsumeFailedQueries();
  ASSERT_EQ(failed.size(), 1u) << "the hard fault still surfaces";
  EXPECT_EQ(failed[0], 0u);
  EXPECT_FALSE(engine.ConsumeHardError().ok());
  EXPECT_TRUE(engine.ConsumeRecoveryRecords().empty())
      << "surrender-without-recovery must not fabricate recovery records";
}

// The watchdog core is a pure function of the morsel timings: one job whose
// slowest morsel dwarfs the batch median is flagged; uniform batches are
// not; degenerate inputs stay quiet.
TEST(RecoveryTest, CountStalledJobsFlagsOutliers) {
  const std::vector<double> seconds = {0.001, 0.001, 0.001, 0.001, 0.1};
  const std::vector<uint32_t> jobs = {0, 0, 1, 1, 2};
  EXPECT_EQ(db::EvalEngine::CountStalledJobs(seconds, jobs, 3, 32.0), 1u);
  EXPECT_EQ(db::EvalEngine::CountStalledJobs(seconds, jobs, 3, 1000.0), 0u);

  const std::vector<double> uniform = {0.002, 0.002, 0.002, 0.002};
  const std::vector<uint32_t> uniform_jobs = {0, 1, 2, 3};
  EXPECT_EQ(db::EvalEngine::CountStalledJobs(uniform, uniform_jobs, 4, 32.0),
            0u);

  // Degenerate: empty input and an all-zero median never flag.
  EXPECT_EQ(db::EvalEngine::CountStalledJobs({}, {}, 0, 32.0), 0u);
  const std::vector<double> zeros = {0.0, 0.0, 0.0};
  const std::vector<uint32_t> zero_jobs = {0, 1, 2};
  EXPECT_EQ(db::EvalEngine::CountStalledJobs(zeros, zero_jobs, 3, 32.0), 0u);
}

// Recovery leaves no residue: after a healed batch, a fault-free batch on
// the same engine produces reference results and no new recovery activity.
TEST(RecoveryTest, CleanBatchAfterRecoveryIsUntouched) {
  fi::DisarmAll();
  auto db = testing_fixtures::MakeNflDatabase();
  auto queries = NflQueries();
  db::EvalEngine reference(&db, db::EvalStrategy::kMergedCached);
  const auto expected = reference.EvaluateBatch(queries);

  db::EvalEngine engine(&db, db::EvalStrategy::kMergedCached);
  engine.SetRecovery(FastRecovery());
  fi::Arm("cube.scan.vectorized");
  (void)engine.EvaluateBatch(queries);
  fi::DisarmAll();
  (void)engine.ConsumeRecoveryRecords();
  const size_t descents = engine.stats().ladder_descents;

  const auto clean = engine.EvaluateBatch(queries);
  EXPECT_EQ(clean, expected);
  EXPECT_EQ(engine.stats().ladder_descents, descents)
      << "a clean batch must not enter recovery";
  EXPECT_TRUE(engine.ConsumeRecoveryRecords().empty());
  EXPECT_TRUE(engine.ConsumeFailedQueries().empty());
  EXPECT_TRUE(engine.ConsumeHardError().ok());
}

}  // namespace
}  // namespace aggchecker
