// End-to-end test of the data-dictionary feature (§4.2): with cryptic
// column headers (as in real survey exports), claims only translate when
// the dictionary supplies the descriptive keywords.

#include <gtest/gtest.h>

#include "core/aggchecker.h"
#include "corpus/metrics.h"
#include "text/document.h"

namespace aggchecker {
namespace {

/// Survey table with abbreviated headers: edu_lvl, occ, sal, rmt.
db::Database MakeCrypticSurveyDb() {
  db::Database database("survey");
  db::Table t("resp2017");
  (void)t.AddColumn("rid", db::ValueType::kLong);
  (void)t.AddColumn("edu_lvl", db::ValueType::kString);
  (void)t.AddColumn("occ", db::ValueType::kString);
  (void)t.AddColumn("sal", db::ValueType::kDouble);
  (void)t.AddColumn("rmt", db::ValueType::kString);
  for (int i = 0; i < 200; ++i) {
    const char* edu = i < 30 ? "st" : i < 110 ? "bsc" : "msc";
    const char* occ = i < 90 ? "fullstack" : "backend";
    bool remote = i >= 150;
    (void)t.AddRow({db::Value(static_cast<int64_t>(i + 1)),
                    db::Value(std::string(edu)),
                    db::Value(std::string(occ)),
                    db::Value(remote ? 70000.0 : 50000.0),
                    db::Value(std::string(remote ? "y" : "n"))});
  }
  (void)database.AddTable(std::move(t));
  return database;
}

fragments::DataDictionary MakeDictionary() {
  fragments::DataDictionary dict;
  dict.Add({"resp2017", "edu_lvl"},
           "education level of the respondent (self-taught, bachelor, "
           "master degree)");
  dict.Add({"resp2017", "occ"}, "occupation or developer role");
  dict.Add({"resp2017", "sal"}, "annual salary in dollars");
  dict.Add({"resp2017", "rmt"}, "whether the respondent works remote");
  dict.Add({"resp2017", "rid"}, "respondent id");
  return dict;
}

constexpr const char* kArticle = R"(
<h1>Survey results</h1>
<h2>Pay</h2>
<p>The average salary across all 200 respondents was 55,000 dollars.</p>
<h2>Remote work</h2>
<p>Exactly 50 respondents work remote.</p>
)";

struct Truths {
  std::vector<corpus::GroundTruthClaim> list;
};

Truths GroundTruth() {
  Truths t;
  {
    corpus::GroundTruthClaim g;
    g.claimed_value = 200;
    g.query.fn = db::AggFn::kCount;
    g.query.agg_column = {"resp2017", ""};
    g.true_value = 200;
    t.list.push_back(g);
  }
  {
    corpus::GroundTruthClaim g;
    g.claimed_value = 55000;
    g.query.fn = db::AggFn::kAvg;
    g.query.agg_column = {"resp2017", "sal"};
    g.true_value = 55000;
    t.list.push_back(g);
  }
  {
    corpus::GroundTruthClaim g;
    g.claimed_value = 50;
    g.query.fn = db::AggFn::kCount;
    g.query.agg_column = {"resp2017", ""};
    g.query.predicates = {{{"resp2017", "rmt"},
                           db::Value(std::string("y"))}};
    g.true_value = 50;
    t.list.push_back(g);
  }
  return t;
}

size_t CountTop5Hits(const core::CheckReport& report) {
  auto truths = GroundTruth();
  size_t hits = 0;
  for (size_t i = 0; i < report.verdicts.size() && i < truths.list.size();
       ++i) {
    size_t rank = corpus::GroundTruthRank(truths.list[i],
                                          report.verdicts[i]);
    if (rank >= 1 && rank <= 5) ++hits;
  }
  return hits;
}

TEST(DictionaryPipelineTest, DescriptionsUnlockCrypticHeaders) {
  // The claims say "salary"/"remote"; the columns are "sal"/"rmt". The
  // word-splitter cannot bridge that gap — the dictionary can.
  // Note: the middle "200 respondents" mention is part of the avg claim's
  // sentence, so keep expectations on the two real claims only.
  auto database = MakeCrypticSurveyDb();
  auto doc = text::ParseDocument(kArticle);
  ASSERT_TRUE(doc.ok());

  core::CheckOptions without;
  without.report_top_k = 20;
  auto checker_plain = core::AggChecker::Create(&database, without);
  auto report_plain = checker_plain->Check(*doc);
  ASSERT_TRUE(report_plain.ok());

  auto dict = MakeDictionary();
  core::CheckOptions with = without;
  with.catalog.dictionary = &dict;
  auto checker_dict = core::AggChecker::Create(&database, with);
  auto report_dict = checker_dict->Check(*doc);
  ASSERT_TRUE(report_dict.ok());

  // First verdict corresponds to "200" (count) — claims are 200, 55,000,
  // 50 in order; align expectations accordingly.
  EXPECT_GE(CountTop5Hits(*report_dict), CountTop5Hits(*report_plain));
  // The salary average must be resolvable with the dictionary.
  bool found_sal = false;
  for (const auto& v : report_dict->verdicts) {
    for (const auto& cand : v.top_queries) {
      if (cand.query.fn == db::AggFn::kAvg &&
          cand.query.agg_column.column == "sal" && cand.matches) {
        found_sal = true;
      }
    }
  }
  EXPECT_TRUE(found_sal);
}

TEST(DictionaryPipelineTest, VerdictQualityImproves) {
  auto database = MakeCrypticSurveyDb();
  auto doc = text::ParseDocument(kArticle);
  auto dict = MakeDictionary();
  core::CheckOptions with;
  with.catalog.dictionary = &dict;
  auto checker = core::AggChecker::Create(&database, with);
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  // All three detected numbers (200, 55,000, 50) are consistent with the
  // data; nothing should be flagged once the dictionary is available.
  EXPECT_EQ(report->NumFlagged(), 0u);
}

}  // namespace
}  // namespace aggchecker
