#include "corpus/export.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "claims/claim_detector.h"
#include "corpus/embedded_articles.h"
#include "corpus/generator.h"
#include "db/executor.h"
#include "test_fixtures.h"

namespace aggchecker {
namespace corpus {
namespace {

namespace fs = std::filesystem;

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("aggchecker_export_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST(QueryCanonicalKeyTest, RoundTripAllFunctions) {
  using testing_fixtures::CountStar;
  std::vector<db::SimpleAggregateQuery> queries;
  queries.push_back(CountStar("t"));
  queries.push_back(CountStar(
      "t", {{{"t", "Games"}, db::Value(std::string("indef"))},
            {{"t", "Category"}, db::Value(std::string("gambling"))}}));
  {
    db::SimpleAggregateQuery q;
    q.fn = db::AggFn::kAvg;
    q.agg_column = {"t", "Fine"};
    q.predicates = {{{"t", "Year"}, db::Value(int64_t{2014})}};
    queries.push_back(q);
  }
  {
    db::SimpleAggregateQuery q;
    q.fn = db::AggFn::kConditionalProbability;
    q.agg_column = {"t", ""};
    q.predicates = {{{"t", "a"}, db::Value(std::string("x"))},
                    {{"t", "b"}, db::Value(std::string("y"))}};
    queries.push_back(q);
  }
  {
    db::SimpleAggregateQuery q;
    q.fn = db::AggFn::kPercentage;
    q.agg_column = {"t", "Edu"};
    q.predicates = {{{"t", "Edu"}, db::Value(std::string("self-taught"))}};
    queries.push_back(q);
  }
  for (const auto& q : queries) {
    auto parsed = db::SimpleAggregateQuery::FromCanonicalKey(
        q.CanonicalKey());
    ASSERT_TRUE(parsed.ok()) << q.CanonicalKey() << ": "
                             << parsed.status().ToString();
    EXPECT_TRUE(*parsed == q) << q.CanonicalKey() << " vs "
                              << parsed->CanonicalKey();
    EXPECT_EQ(parsed->CanonicalKey(), q.CanonicalKey());
  }
}

TEST(QueryCanonicalKeyTest, ParseErrors) {
  using Q = db::SimpleAggregateQuery;
  EXPECT_FALSE(Q::FromCanonicalKey("").ok());
  EXPECT_FALSE(Q::FromCanonicalKey("Nonsense(t.*)").ok());
  EXPECT_FALSE(Q::FromCanonicalKey("Count(t.*)|badpiece").ok());
  EXPECT_FALSE(Q::FromCanonicalKey("Count").ok());
  EXPECT_FALSE(Q::FromCanonicalKey("Count(nodot)").ok());
}

TEST(DocumentSerializationTest, HtmlRoundTrip) {
  auto original = MakeNflCase();
  std::string html = DocumentToHtml(original.document);
  auto reparsed = text::ParseDocument(html);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->title(), original.document.title());
  EXPECT_EQ(reparsed->sentences().size(),
            original.document.sentences().size());
  EXPECT_EQ(reparsed->paragraphs().size(),
            original.document.paragraphs().size());
  EXPECT_EQ(reparsed->sections().size(),
            original.document.sections().size());
  // Claims detected identically.
  claims::ClaimDetector detector;
  EXPECT_EQ(detector.Detect(*reparsed).size(),
            detector.Detect(original.document).size());
}

TEST(TableSerializationTest, CsvRoundTripPreservesTypesAndValues) {
  auto original = MakeNflCase();
  const db::Table& table = original.database.table(0);
  auto data = csv::Parse(TableToCsv(table));
  ASSERT_TRUE(data.ok());
  auto reparsed = db::Table::FromCsv(table.name(), *data);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->num_rows(), table.num_rows());
  ASSERT_EQ(reparsed->num_columns(), table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    EXPECT_EQ(reparsed->column(c).type(), table.column(c).type()) << c;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      EXPECT_EQ(reparsed->column(c).at(r), table.column(c).at(r))
          << "row " << r << " col " << c;
    }
  }
}

TEST_F(ExportTest, ExportImportRoundTrip) {
  auto original = MakeDeveloperSurveyCase();
  ASSERT_TRUE(ExportCase(original, dir_.string()).ok());

  auto imported = ImportCase((dir_ / original.name).string());
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(imported->name, original.name);
  ASSERT_EQ(imported->ground_truth.size(), original.ground_truth.size());
  for (size_t i = 0; i < original.ground_truth.size(); ++i) {
    const auto& a = original.ground_truth[i];
    const auto& b = imported->ground_truth[i];
    EXPECT_DOUBLE_EQ(a.claimed_value, b.claimed_value) << i;
    EXPECT_NEAR(a.true_value, b.true_value, 1e-9) << i;
    EXPECT_EQ(a.is_erroneous, b.is_erroneous) << i;
    EXPECT_TRUE(a.query == b.query) << i << ": " << b.query.CanonicalKey();
  }
  // Ground-truth queries re-evaluate to the recorded values on the
  // re-imported database.
  db::QueryExecutor exec(&imported->database);
  for (const auto& g : imported->ground_truth) {
    auto r = exec.Execute(g.query);
    ASSERT_TRUE(r.ok()) << g.query.ToSql() << ": "
                        << r.status().ToString();
    ASSERT_TRUE(r->has_value());
    EXPECT_NEAR(**r, g.true_value, 1e-6) << g.query.ToSql();
  }
}

TEST_F(ExportTest, GeneratedCaseRoundTrip) {
  GeneratorOptions options;
  auto original = GenerateCase(11, options);
  ASSERT_TRUE(ExportCase(original, dir_.string()).ok());
  auto imported = ImportCase((dir_ / original.name).string());
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(imported->document.sentences().size(),
            original.document.sentences().size());
  EXPECT_EQ(imported->database.TotalRows(), original.database.TotalRows());
  EXPECT_EQ(imported->ground_truth.size(), original.ground_truth.size());
}

TEST_F(ExportTest, ImportMissingDirectoryFails) {
  EXPECT_FALSE(ImportCase((dir_ / "nonexistent").string()).ok());
}

}  // namespace
}  // namespace corpus
}  // namespace aggchecker
