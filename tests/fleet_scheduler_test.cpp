#include "core/fleet_scheduler.h"

#include <gtest/gtest.h>

#include <set>

#include "corpus/fleet_generator.h"
#include "corpus/harness.h"
#include "util/thread_pool.h"

namespace aggchecker {
namespace core {
namespace {

corpus::FleetSpec SmallSpec() {
  corpus::FleetSpec spec;
  spec.seed = 11;
  spec.num_articles = 8;
  spec.num_datasets = 2;
  spec.claims_per_article = 4;
  spec.num_dim_columns = 5;
  spec.num_measure_columns = 3;
  spec.rows_per_dataset = 400;
  spec.dim_cardinality = 8;
  spec.error_rate = 0.2;
  return spec;
}

/// Collects per-document fingerprints in input order ("" for failed docs).
std::vector<std::string> Fingerprints(const FleetRunResult& run) {
  std::vector<std::string> fps(run.documents.size());
  for (const auto& doc : run.documents) {
    fps[doc.index] = doc.status.ok() ? FleetVerdictFingerprint(doc.report)
                                     : std::string();
  }
  return fps;
}

/// The tentpole invariant: per-document verdicts are bit-identical between
/// the scheduler (at any thread count, any priority order) and the
/// one-at-a-time reference run.
TEST(FleetSchedulerTest, VerdictsBitIdenticalAcrossThreadCounts) {
  corpus::FleetCorpus fleet = corpus::GenerateFleet(SmallSpec());
  auto documents = corpus::FleetDocuments(fleet);

  FleetOptions options;
  FleetRunResult reference = RunFleetSequential(documents, options);
  ASSERT_EQ(reference.documents_failed, 0u);
  const auto reference_fps = Fingerprints(reference);

  for (size_t threads : {1u, 2u, 8u}) {
    for (bool prioritize : {true, false}) {
      FleetOptions run_options;
      run_options.num_threads = threads;
      run_options.prioritize = prioritize;
      FleetRunResult run = RunFleet(documents, run_options);
      ASSERT_EQ(run.documents_failed, 0u)
          << threads << " threads, prioritize=" << prioritize;
      EXPECT_EQ(Fingerprints(run), reference_fps)
          << threads << " threads, prioritize=" << prioritize;
    }
  }
}

/// Same invariant under a global budget tight enough to trip every slice:
/// partial verdicts must also be interleaving-independent.
TEST(FleetSchedulerTest, BudgetedVerdictsBitIdenticalAcrossThreadCounts) {
  corpus::FleetCorpus fleet = corpus::GenerateFleet(SmallSpec());
  auto documents = corpus::FleetDocuments(fleet);

  // Measure the unconstrained appetite, then grant half of it globally.
  FleetOptions unlimited;
  FleetRunResult probe = RunFleetSequential(documents, unlimited);
  ASSERT_EQ(probe.documents_failed, 0u);
  ASSERT_GT(probe.usage.rows_charged, 0u);

  FleetOptions budgeted;
  budgeted.check.governor.max_row_scans = probe.usage.rows_charged / 2;
  FleetRunResult reference = RunFleetSequential(documents, budgeted);
  const auto reference_fps = Fingerprints(reference);
  EXPECT_GT(reference.claims_partial, 0u);

  for (size_t threads : {1u, 2u, 8u}) {
    FleetOptions run_options = budgeted;
    run_options.num_threads = threads;
    FleetRunResult run = RunFleet(documents, run_options);
    EXPECT_EQ(Fingerprints(run), reference_fps) << threads << " threads";
    EXPECT_EQ(run.documents_exhausted, reference.documents_exhausted)
        << threads << " threads";
  }
}

/// Fairness: N identical documents under a global budget that trips
/// mid-run degrade together — every document lands partial verdicts, none
/// is starved by queue position.
TEST(FleetSchedulerTest, BudgetTripsFairlyAcrossEqualDocuments) {
  corpus::FleetSpec spec = SmallSpec();
  spec.num_articles = 1;
  spec.num_datasets = 1;
  spec.rows_per_dataset = 1500;
  corpus::FleetCorpus fleet = corpus::GenerateFleet(spec);
  ASSERT_EQ(fleet.articles.size(), 1u);

  // Six equal documents: the same article checked six times.
  constexpr size_t kDocs = 6;
  auto one = corpus::FleetDocuments(fleet);
  std::vector<FleetDocument> documents;
  for (size_t i = 0; i < kDocs; ++i) {
    FleetDocument doc = one[0];
    doc.name = doc.name + "-copy";
    documents.push_back(doc);
  }

  FleetOptions unlimited;
  FleetRunResult probe = RunFleetSequential(documents, unlimited);
  ASSERT_EQ(probe.documents_failed, 0u);

  FleetOptions budgeted;
  budgeted.num_threads = 2;
  budgeted.check.governor.max_row_scans = probe.usage.rows_charged / 2;
  FleetRunResult run = RunFleet(documents, budgeted);

  // The global budget tripped — and tripped everywhere, not on a victim
  // subset: identical documents get identical slices, so every one of them
  // runs out at the same point and carries partial verdicts.
  EXPECT_EQ(run.documents_exhausted, kDocs);
  for (const auto& doc : run.documents) {
    ASSERT_TRUE(doc.status.ok());
    EXPECT_TRUE(doc.report.governor_usage.exhausted);
    EXPECT_GT(doc.report.NumPartial(), 0u) << "document " << doc.index;
  }
  // The fleet-wide spend respects the global ledger: per-slice enforcement
  // keeps the total within one slice's overshoot of the budget.
  const uint64_t slice =
      SliceGovernorBudget(budgeted.check.governor, kDocs).max_row_scans;
  EXPECT_LE(run.usage.rows_charged,
            budgeted.check.governor.max_row_scans +
                kDocs * ResourceGovernor::kCheckIntervalRows + kDocs * slice);
}

/// Governor charge totals are a pure function of the input — equal across
/// schedule orders and thread counts.
TEST(FleetSchedulerTest, ChargeTotalsEqualAcrossScheduleOrders) {
  corpus::FleetCorpus fleet = corpus::GenerateFleet(SmallSpec());
  auto documents = corpus::FleetDocuments(fleet);

  FleetOptions fifo;
  fifo.prioritize = false;
  FleetRunResult a = RunFleetSequential(documents, fifo);

  FleetOptions prioritized;
  prioritized.prioritize = true;
  prioritized.num_threads = 2;
  FleetRunResult b = RunFleet(documents, prioritized);

  FleetOptions fifo_pooled;
  fifo_pooled.prioritize = false;
  fifo_pooled.num_threads = 8;
  FleetRunResult c = RunFleet(documents, fifo_pooled);

  EXPECT_EQ(a.usage.rows_charged, b.usage.rows_charged);
  EXPECT_EQ(a.usage.cube_groups_charged, b.usage.cube_groups_charged);
  EXPECT_EQ(a.usage.memory_bytes_charged, b.usage.memory_bytes_charged);
  EXPECT_EQ(b.usage.rows_charged, c.usage.rows_charged);
  EXPECT_EQ(b.usage.cube_groups_charged, c.usage.cube_groups_charged);
  EXPECT_EQ(b.usage.memory_bytes_charged, c.usage.memory_bytes_charged);
}

/// The greedy priority groups documents by dataset: once a dataset is warm,
/// its remaining documents always outrank every cold document (the warm
/// priority is 1/(scan+group unit cost), the cold one strictly less).
TEST(FleetSchedulerTest, PrioritySchedulesSharedDatasetsTogether) {
  corpus::FleetCorpus fleet = corpus::GenerateFleet(SmallSpec());
  auto documents = corpus::FleetDocuments(fleet);

  FleetOptions options;
  options.prioritize = true;
  FleetRunResult run = RunFleet(documents, options);

  // Walk the schedule order; the dataset may only change when the previous
  // dataset has no documents left.
  std::vector<size_t> by_position(documents.size());
  for (const auto& doc : run.documents) {
    by_position[doc.schedule_position] = doc.index;
  }
  std::set<const db::Database*> drained;
  const db::Database* current = nullptr;
  for (size_t pos = 0; pos < by_position.size(); ++pos) {
    const db::Database* db = documents[by_position[pos]].database;
    if (db != current) {
      EXPECT_EQ(drained.count(db), 0u)
          << "dataset revisited at schedule position " << pos;
      if (current != nullptr) drained.insert(current);
      current = db;
    }
  }
}

/// Satellite: the scheduler self-reports the host's concurrency so a
/// thread-sweep on a clamped (1-core) container is legible in the results
/// instead of silently recording phantom scaling.
TEST(FleetSchedulerTest, SelfReportsHardwareClamp) {
  corpus::FleetSpec spec = SmallSpec();
  spec.num_articles = 2;
  corpus::FleetCorpus fleet = corpus::GenerateFleet(spec);
  auto documents = corpus::FleetDocuments(fleet);

  FleetOptions options;
  options.num_threads = 8;
  FleetRunResult run = RunFleet(documents, options);
  EXPECT_EQ(run.threads_used, 8u);
  EXPECT_EQ(run.hardware_concurrency, ThreadPool::HardwareConcurrency());
  EXPECT_EQ(run.threads_oversubscribed,
            run.threads_used > run.hardware_concurrency);

  FleetOptions defaulted;
  defaulted.num_threads = 0;  // 0 = hardware concurrency: never oversubscribed
  FleetRunResult hw = RunFleet(documents, defaulted);
  EXPECT_EQ(hw.threads_used, ThreadPool::HardwareConcurrency());
  EXPECT_FALSE(hw.threads_oversubscribed);
}

/// Fleet-mode harness: detection scored against ground truth by position.
TEST(FleetSchedulerTest, HarnessScoresFleetAgainstGroundTruth) {
  corpus::FleetCorpus fleet = corpus::GenerateFleet(SmallSpec());

  FleetOptions options;
  options.num_threads = 2;
  corpus::FleetHarnessResult result = corpus::RunOnFleet(fleet, options);
  EXPECT_EQ(result.run.documents_failed, 0u);
  EXPECT_EQ(result.documents_misaligned, 0u);
  EXPECT_EQ(result.detection.total_claims, fleet.TotalClaims());
  // The generator's claims are sharply detectable by construction: perfect
  // precision and recall on a small fleet (the fleet-smoke gate).
  EXPECT_EQ(result.detection.false_positives, 0u);
  EXPECT_EQ(result.detection.false_negatives, 0u);
}

}  // namespace
}  // namespace core
}  // namespace aggchecker
