#include "db/query_interner.h"

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "claims/claim_detector.h"
#include "model/translator.h"
#include "test_fixtures.h"
#include "text/document.h"

namespace aggchecker {
namespace model {
namespace {

using testing_fixtures::MakeNflDatabase;

constexpr const char* kNflArticle = R"(
<h1>The NFL's Uneven History Of Punishing Domestic Violence</h1>
<h2>Lifetime bans</h2>
<p>There were only four previous lifetime bans in my database. Three were
for repeated substance abuse offenses, one was for gambling.</p>
)";

/// The claim-detection front half, up to per-claim relevance — what
/// CandidateSpace::Build needs.
struct Pipeline {
  Pipeline() : database(MakeNflDatabase()) {
    auto parsed = text::ParseDocument(kNflArticle);
    doc = std::move(*parsed);
    detected = claims::ClaimDetector().Detect(doc);
    auto built = fragments::FragmentCatalog::Build(database);
    catalog = std::make_unique<fragments::FragmentCatalog>(std::move(*built));
    claims::RelevanceScorer scorer(catalog.get(), claims::KeywordExtractor(),
                                   20);
    relevance = scorer.ScoreAll(doc, detected);
  }

  db::Database database;
  text::TextDocument doc;
  std::vector<claims::Claim> detected;
  std::unique_ptr<fragments::FragmentCatalog> catalog;
  std::vector<claims::ClaimRelevance> relevance;
};

/// The property the translator's fingerprint path rests on, enumerated over
/// every candidate triple of every claim's space:
///   Encode(f, c, s) == InternQuery(Materialize(f, c, s))
/// and Materialize(Encode(...)) reproduces the space's query verbatim — so
/// shipping ids instead of queries can never change what gets evaluated.
TEST(QueryFingerprintTest, EncodeMaterializeRoundTripOverCandidateSpaces) {
  Pipeline p;
  ASSERT_FALSE(p.detected.empty());
  db::QueryInterner interner;
  // fingerprint -> the query it stands for, across ALL claims: distinct
  // queries must get distinct fingerprints even between spaces.
  std::unordered_map<uint64_t, db::SimpleAggregateQuery> by_fingerprint;
  std::unordered_set<uint64_t> ids_seen;
  size_t triples = 0;
  ModelOptions options;
  for (const auto& rel : p.relevance) {
    auto space = CandidateSpace::Build(p.database, *p.catalog, rel, options);
    CandidateInterner encoder(space, *p.catalog, interner);
    for (size_t f = 0; f < space.functions().size(); ++f) {
      for (size_t c = 0; c < space.columns().size(); ++c) {
        for (size_t s = 0; s < space.subsets().size(); ++s) {
          ++triples;
          const db::QueryInterner::Id id = encoder.Encode(f, c, s);
          const auto query = space.Materialize(f, c, s, *p.catalog);
          // Round trip in both directions.
          EXPECT_EQ(interner.Materialize(id), query)
              << "f=" << f << " c=" << c << " s=" << s;
          EXPECT_EQ(interner.InternQuery(query), id)
              << "f=" << f << " c=" << c << " s=" << s;
          // Memoized re-encode is stable.
          EXPECT_EQ(encoder.Encode(f, c, s), id);
          // Fingerprints are injective over distinct queries.
          const uint64_t fp = interner.fingerprint(id);
          auto [it, inserted] = by_fingerprint.emplace(fp, query);
          if (!inserted) {
            EXPECT_EQ(it->second, query)
                << "fingerprint collision between distinct queries";
          }
          ids_seen.insert(id);
        }
      }
    }
  }
  ASSERT_GT(triples, 100u);  // the fixture exercises a non-trivial space
  // One fingerprint per id: the packing never aliases two ids.
  EXPECT_EQ(by_fingerprint.size(), ids_seen.size());
  EXPECT_EQ(interner.num_queries(), ids_seen.size());
}

TEST(QueryFingerprintTest, InternQueryIsIdempotentAndVerbatim) {
  db::QueryInterner interner;
  db::SimpleAggregateQuery q;
  q.fn = db::AggFn::kSum;
  q.agg_column = {"orders", "amount"};
  q.predicates = {{{"customers", "region"}, db::Value(std::string("east"))}};
  const auto id = interner.InternQuery(q);
  EXPECT_EQ(interner.InternQuery(q), id);
  EXPECT_EQ(interner.Materialize(id), q);
}

TEST(QueryFingerprintTest, ColumnsInternCaseInsensitively) {
  db::QueryInterner interner;
  db::SimpleAggregateQuery lower;
  lower.fn = db::AggFn::kCount;
  lower.agg_column = {"orders", ""};
  lower.predicates = {
      {{"customers", "region"}, db::Value(std::string("east"))}};
  db::SimpleAggregateQuery upper = lower;
  upper.agg_column = {"ORDERS", ""};
  upper.predicates[0].column = {"Customers", "REGION"};
  const auto id = interner.InternQuery(lower);
  EXPECT_EQ(interner.InternQuery(upper), id);
  // First-seen spelling is what materializes.
  EXPECT_EQ(interner.Materialize(id).predicates[0].column.table, "customers");
}

TEST(QueryFingerprintTest, ValuesInternByValueEquality) {
  db::QueryInterner interner;
  // Numeric coercion: 5 (long) and 5.0 (double) are the same literal, so
  // predicates over them are the same predicate — matching the literal
  // dedup of the engine's plan phase.
  const auto as_long = interner.InternValue(db::Value(int64_t{5}));
  const auto as_double = interner.InternValue(db::Value(5.0));
  EXPECT_EQ(as_long, as_double);
  const auto col = interner.InternColumn({"orders", "amount"});
  EXPECT_EQ(interner.InternPredicate(interner.column(col),
                                     db::Value(int64_t{5})),
            interner.InternPredicate(interner.column(col), db::Value(5.0)));
}

TEST(QueryFingerprintTest, PredicateListsAreOrderPreserving) {
  db::QueryInterner interner;
  // ConditionalProbability reads predicates[0] as the condition, so the
  // interner must NOT canonicalize predicate order.
  const auto a = interner.InternPredicate({"t", "a"},
                                          db::Value(std::string("x")));
  const auto b = interner.InternPredicate({"t", "b"},
                                          db::Value(std::string("y")));
  EXPECT_NE(interner.InternPredList({a, b}), interner.InternPredList({b, a}));
  EXPECT_EQ(interner.InternPredList({a, b}), interner.InternPredList({a, b}));
}

TEST(QueryFingerprintTest, FingerprintSeparatesEveryComponent) {
  db::QueryInterner interner;
  db::SimpleAggregateQuery base;
  base.fn = db::AggFn::kCount;
  base.agg_column = {"orders", ""};
  base.predicates = {
      {{"customers", "region"}, db::Value(std::string("east"))}};
  const auto base_id = interner.InternQuery(base);

  auto other_fn = base;
  other_fn.fn = db::AggFn::kCountDistinct;
  auto other_col = base;
  other_col.agg_column = {"orders", "amount"};
  auto other_pred = base;
  other_pred.predicates[0].value = db::Value(std::string("west"));
  auto no_pred = base;
  no_pred.predicates.clear();
  for (const auto& variant : {other_fn, other_col, other_pred, no_pred}) {
    const auto id = interner.InternQuery(variant);
    EXPECT_NE(id, base_id) << variant.ToSql();
    EXPECT_NE(interner.fingerprint(id), interner.fingerprint(base_id))
        << variant.ToSql();
  }
}

}  // namespace
}  // namespace model
}  // namespace aggchecker
