// Chaos and fuzz-lite tests: the full checking pipeline must degrade into
// documented Status codes — never crash, hang, or return garbage — when
// faults are injected at registered fault points or when resource budgets
// are starved. See DESIGN.md "Failure-handling contract".

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/aggchecker.h"
#include "core/interactive_session.h"
#include "corpus/generator.h"
#include "db/relation_cache.h"
#include "db/table.h"
#include "test_fixtures.h"
#include "text/document.h"
#include "util/csv.h"
#include "util/fault_injection.h"

namespace aggchecker {
namespace {

namespace fi = fault_injection;

constexpr const char* kArticle = R"(
<h1>The NFL's Uneven History Of Punishing Domestic Violence</h1>
<h2>Lifetime bans</h2>
<p>There were only four previous lifetime bans in my database. Three were
for repeated substance abuse offenses, one was for gambling.</p>
)";

/// Runs the whole pipeline from raw CSV text to a report, routing every
/// failure into the returned Status (no step may crash under injection).
/// When `report_out` is non-null, a successful run's report is copied out so
/// callers can inspect recovery/quarantine state.
Status RunPipeline(core::CheckOptions options = {},
                   core::CheckReport* report_out = nullptr) {
  auto data = csv::Parse(testing_fixtures::kNflCsv);
  if (!data.ok()) return data.status();
  auto table = db::Table::FromCsv("nflsuspensions", *data);
  if (!table.ok()) return table.status();
  db::Database database("nfl");
  Status added = database.AddTable(std::move(*table));
  if (!added.ok()) return added;
  auto checker = core::AggChecker::Create(&database, options);
  if (!checker.ok()) return checker.status();
  auto doc = text::ParseDocument(kArticle);
  if (!doc.ok()) return doc.status();
  auto report = checker->Check(*doc);
  if (!report.ok()) return report.status();
  // Sanity: a successful run must have produced verdicts.
  if (report->verdicts.empty()) return Status::Internal("no verdicts");
  if (report_out != nullptr) *report_out = std::move(*report);
  return Status::OK();
}

/// The closed vocabulary a chaos run may surface: success, the injected
/// default (kInternal), or a governor stop that leaked past degradation
/// (never expected, but part of the documented Status surface).
bool IsDocumentedOutcome(const Status& status) {
  return status.ok() || status.code() == StatusCode::kInternal ||
         status.code() == StatusCode::kParseError ||
         status.IsResourceExhausted();
}

core::CheckOptions NaiveOptions() {
  core::CheckOptions options;
  options.strategy = db::EvalStrategy::kNaive;
  return options;
}

TEST(ChaosTest, CleanRunRegistersFaultPoints) {
  fi::DisarmAll();
  // Merged-cube and naive strategies together cover all evaluation paths.
  ASSERT_TRUE(RunPipeline().ok());
  ASSERT_TRUE(RunPipeline(NaiveOptions()).ok());
  std::vector<std::string> points = fi::RegisteredPoints();
  // Every layer of the pipeline exposes at least one point.
  for (const char* expected :
       {"catalog.build", "check.run", "csv.row", "cube.materialize",
        "em.iterate", "executor.execute"}) {
    EXPECT_NE(std::find(points.begin(), points.end(), expected),
              points.end())
        << "fault point not registered: " << expected;
  }
}

/// True when a report carries any trace of the self-healing layer acting on
/// a fault: a healed or quarantined claim, or raw engine recovery counters.
bool RecoveryVisible(const core::CheckReport& report) {
  return report.NumRecovered() + report.NumQuarantined() > 0 ||
         report.eval_stats.queries_recovered +
                 report.eval_stats.queries_quarantined >
             0 ||
         report.run_attempts > 1;
}

TEST(ChaosTest, EveryFaultPointOneAtATime) {
  fi::DisarmAll();
  // Populate the registry across both evaluation strategies.
  ASSERT_TRUE(RunPipeline().ok());
  ASSERT_TRUE(RunPipeline(NaiveOptions()).ok());
  std::vector<std::string> points = fi::RegisteredPoints();
  ASSERT_FALSE(points.empty());
  for (const std::string& point : points) {
    fi::Arm(point);
    core::CheckReport merged_report;
    core::CheckReport naive_report;
    Status merged_status = RunPipeline({}, &merged_report);
    Status naive_status = RunPipeline(NaiveOptions(), &naive_report);
    EXPECT_TRUE(IsDocumentedOutcome(merged_status))
        << point << " surfaced undocumented status: "
        << merged_status.ToString();
    EXPECT_TRUE(IsDocumentedOutcome(naive_status))
        << point << " surfaced undocumented status: "
        << naive_status.ToString();
    // Registered points sit on an executed path of one of the two
    // strategies, so arming one must reach it (join.materialize only runs
    // for multi-table databases, so it may be registered but unhit here).
    // With recovery ON (the default), an evaluation-layer fault no longer
    // fails the run — but it must leave a trace: either a pipeline failed
    // (fault outside the recovery layer's reach) or its report shows the
    // fault was healed or quarantined.
    if (point == "translator.probe") {
      // A faulted probe degrades to "don't prune" by contract: the
      // candidate evaluates normally, the run stays fault-free, and no
      // recovery trace exists. Bit-identity under probe faults is pinned
      // by the probe-pruning differential tests.
      EXPECT_GT(fi::HitCount(point), 0u) << point << " was never hit";
      EXPECT_TRUE(merged_status.ok())
          << point << " must degrade to an unpruned run, not fail: "
          << merged_status.ToString();
    } else if (point != "join.materialize") {
      EXPECT_GT(fi::HitCount(point), 0u) << point << " was never hit";
      const bool merged_visible =
          !merged_status.ok() || RecoveryVisible(merged_report);
      const bool naive_visible =
          !naive_status.ok() || RecoveryVisible(naive_report);
      EXPECT_TRUE(merged_visible || naive_visible)
          << point << " fired but left no failure or recovery trace";
    }
    fi::DisarmAll();
  }
}

// The fail-fast contract survives behind the recovery switch: with
// `recovery.enabled = false`, quarantine still keeps per-query faults from
// aborting the run (failed queries have owners), but nothing is retried and
// nothing heals — every armed evaluation fault must surface as a failure or
// a quarantined claim, never as a silent success.
TEST(ChaosTest, RecoveryDisabledNeverHealsSilently) {
  fi::DisarmAll();
  ASSERT_TRUE(RunPipeline().ok());
  ASSERT_TRUE(RunPipeline(NaiveOptions()).ok());
  std::vector<std::string> points = fi::RegisteredPoints();
  ASSERT_FALSE(points.empty());
  for (const std::string& point : points) {
    if (point == "join.materialize") continue;  // unhit on one-table runs
    if (point == "translator.probe") continue;  // degrades to "don't prune"
        // with or without recovery: fault-free success, no trace by design
    fi::Arm(point);
    core::CheckOptions merged_options;
    merged_options.recovery.enabled = false;
    core::CheckOptions naive_options = NaiveOptions();
    naive_options.recovery.enabled = false;
    core::CheckReport merged_report;
    core::CheckReport naive_report;
    Status merged_status = RunPipeline(merged_options, &merged_report);
    Status naive_status = RunPipeline(naive_options, &naive_report);
    EXPECT_TRUE(IsDocumentedOutcome(merged_status)) << point;
    EXPECT_TRUE(IsDocumentedOutcome(naive_status)) << point;
    EXPECT_EQ(merged_report.NumRecovered() + merged_report.eval_stats
                  .queries_recovered, 0u)
        << point << " healed with recovery disabled";
    EXPECT_EQ(naive_report.NumRecovered() +
                  naive_report.eval_stats.queries_recovered,
              0u)
        << point << " healed with recovery disabled";
    EXPECT_TRUE(!merged_status.ok() || !naive_status.ok() ||
                merged_report.NumQuarantined() +
                        naive_report.NumQuarantined() >
                    0)
        << point << " fired but both fail-fast pipelines looked clean";
    fi::DisarmAll();
  }
}

TEST(ChaosTest, NthHitInjectionFiresDeterministically) {
  fi::DisarmAll();
  ASSERT_TRUE(RunPipeline().ok());
  // em.iterate runs once per EM iteration: tripping hit 2 exercises the
  // mid-loop abort path rather than the first-entry path.
  fi::FaultSpec spec;
  spec.trigger_on_hit = 2;
  fi::Arm("em.iterate", spec);
  Status status = RunPipeline();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_GE(fi::HitCount("em.iterate"), 2u);
  fi::DisarmAll();
}

TEST(ChaosTest, InjectedStatusCodePropagatesVerbatim) {
  fi::DisarmAll();
  ASSERT_TRUE(RunPipeline().ok());
  fi::FaultSpec spec;
  spec.code = StatusCode::kParseError;
  spec.message = "simulated corrupt row";
  fi::Arm("csv.row", spec);
  Status status = RunPipeline();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("simulated corrupt row"),
            std::string::npos);
  fi::DisarmAll();
}

TEST(ChaosTest, RecoversAfterDisarm) {
  fi::DisarmAll();
  fi::Arm("check.run");
  EXPECT_FALSE(RunPipeline().ok());
  fi::DisarmAll();
  // Nothing sticky: the next clean run works and caches stay coherent.
  EXPECT_TRUE(RunPipeline().ok());
  EXPECT_TRUE(RunPipeline().ok());
}

// Fuzz-lite: seeded random documents/schemas from the corpus generator,
// pushed through Check while faults fire at varying depths. Deterministic
// in the seeds; any crash or undocumented Status fails the test.
TEST(ChaosTest, FuzzLiteSeededCorpusUnderFaults) {
  fi::DisarmAll();
  corpus::GeneratorOptions options;
  options.num_cases = 4;
  const std::vector<std::string> points = {
      "executor.execute", "cube.materialize", "em.iterate", "check.run"};
  for (uint64_t seed : {7u, 1234u, 99991u}) {
    options.seed = seed;
    for (size_t c = 0; c < options.num_cases; ++c) {
      corpus::CorpusCase test_case = corpus::GenerateCase(c, options);
      for (size_t p = 0; p < points.size(); ++p) {
        fi::FaultSpec spec;
        spec.trigger_on_hit = 1 + (c + p) % 3;  // vary the injection depth
        fi::Arm(points[p], spec);
        auto checker = core::AggChecker::Create(&test_case.database);
        Status status = checker.ok() ? Status::OK() : checker.status();
        if (checker.ok()) {
          auto report = checker->Check(test_case.document);
          if (!report.ok()) status = report.status();
        }
        EXPECT_TRUE(IsDocumentedOutcome(status))
            << "seed " << seed << " case " << c << " point " << points[p]
            << ": " << status.ToString();
        fi::DisarmAll();
      }
    }
  }
}

// Fuzz-lite for graceful degradation: starved budgets across seeded cases
// must complete without error, mark claims partial instead of erroneous,
// and leave unbounded reruns bit-identical to a fresh unbounded run.
TEST(ChaosTest, FuzzLiteStarvedBudgetsDegradeGracefully) {
  fi::DisarmAll();
  corpus::GeneratorOptions options;
  options.num_cases = 4;
  options.seed = 4242;
  for (size_t c = 0; c < options.num_cases; ++c) {
    corpus::CorpusCase test_case = corpus::GenerateCase(c, options);
    for (uint64_t budget : {uint64_t{1}, uint64_t{5000}, uint64_t{100000}}) {
      core::CheckOptions check_options;
      check_options.governor.max_row_scans = budget;
      auto checker =
          core::AggChecker::Create(&test_case.database, check_options);
      ASSERT_TRUE(checker.ok());
      auto report = checker->Check(test_case.document);
      ASSERT_TRUE(report.ok())
          << "case " << c << " budget " << budget << ": "
          << report.status().ToString();
      for (const auto& verdict : report->verdicts) {
        if (verdict.partial) {
          EXPECT_FALSE(verdict.likely_erroneous)
              << "partial claim flagged erroneous (case " << c
              << ", budget " << budget << ")";
        }
      }
      if (report->governor_usage.exhausted) {
        EXPECT_EQ(report->governor_usage.stop_code,
                  StatusCode::kBudgetExhausted);
      }
    }
  }
}

// Same degradation contract for the modeled-memory budget: cube group and
// combo state, join indexes, and naive-scan state all charge bytes, and a
// starved byte budget must produce partial verdicts — never an error, a
// crash, or a spuriously flagged claim. Both cube backends are covered.
TEST(ChaosTest, FuzzLiteStarvedMemoryBudgetsDegradeGracefully) {
  fi::DisarmAll();
  corpus::GeneratorOptions options;
  options.num_cases = 3;
  options.seed = 20260807;
  for (size_t c = 0; c < options.num_cases; ++c) {
    corpus::CorpusCase test_case = corpus::GenerateCase(c, options);
    for (uint64_t budget :
         {uint64_t{1}, uint64_t{4096}, uint64_t{1} << 20}) {
      for (db::CubeExecMode mode :
           {db::CubeExecMode::kVectorized, db::CubeExecMode::kScalarOracle}) {
        core::CheckOptions check_options;
        check_options.governor.max_memory_bytes = budget;
        check_options.cube_exec = mode;
        auto checker =
            core::AggChecker::Create(&test_case.database, check_options);
        ASSERT_TRUE(checker.ok());
        auto report = checker->Check(test_case.document);
        ASSERT_TRUE(report.ok())
            << "case " << c << " budget " << budget << " mode "
            << db::CubeExecModeName(mode) << ": "
            << report.status().ToString();
        for (const auto& verdict : report->verdicts) {
          if (verdict.partial) {
            EXPECT_FALSE(verdict.likely_erroneous)
                << "partial claim flagged erroneous (case " << c
                << ", memory budget " << budget << ")";
          }
        }
        if (report->governor_usage.exhausted) {
          EXPECT_EQ(report->governor_usage.stop_code,
                    StatusCode::kBudgetExhausted);
          EXPECT_GE(report->governor_usage.memory_bytes_charged, budget);
        }
      }
    }
  }
}

// A governor memory trip against a *warm* relation cache: the cached join's
// per-run charge must trip the starved run (single-charge accounting — the
// bytes are modeled state this run cannot afford, built or cached), the
// entry must be withdrawn so the cache never holds unaccounted state, and a
// fresh unbudgeted run must rebuild and verify cleanly.
TEST(ChaosTest, WarmRelationCacheSurvivesMemoryTrips) {
  fi::DisarmAll();
  auto database = testing_fixtures::MakeOrdersDatabase();
  database.relation_cache().Clear();
  db::SimpleAggregateQuery joined = testing_fixtures::CountStar(
      "orders", {{{"customers", "region"}, db::Value(std::string("east"))}});
  auto direct = db::JoinedRelation::Build(database, {"orders", "customers"});
  ASSERT_TRUE(direct.ok());
  const uint64_t join_bytes = direct->ApproxBytes();

  // Warm run (naive keeps the accounting exact: the join's bytes are the
  // only memory charge, paid exactly once despite three evaluations).
  {
    db::EvalEngine engine(&database, db::EvalStrategy::kNaive);
    ResourceGovernor governor;
    engine.SetGovernor(&governor);
    auto results = engine.EvaluateBatch({joined, joined, joined});
    ASSERT_TRUE(results[0].has_value());
    EXPECT_DOUBLE_EQ(*results[0], 3.0);
    EXPECT_EQ(engine.stats().joins_built, 1u);
    EXPECT_EQ(engine.stats().join_cache_hits, 2u);
    EXPECT_EQ(governor.usage().memory_bytes_charged, join_bytes);
  }
  EXPECT_EQ(database.relation_cache().size(), 1u);

  // Starved run against the warm cache: the cached join re-charges under
  // the new run id, trips the budget, and is withdrawn.
  {
    GovernorLimits tiny;
    tiny.max_memory_bytes = 1;
    db::EvalEngine engine(&database, db::EvalStrategy::kNaive);
    ResourceGovernor governor(tiny);
    engine.SetGovernor(&governor);
    auto results = engine.EvaluateBatch({joined});
    EXPECT_FALSE(results[0].has_value());
    EXPECT_EQ(engine.stats().queries_aborted, 1u);
    EXPECT_TRUE(engine.ConsumeHardError().ok());  // a stop, not an error
    EXPECT_TRUE(governor.exhausted());
    EXPECT_EQ(governor.usage().stop_code, StatusCode::kBudgetExhausted);
  }
  EXPECT_EQ(database.relation_cache().size(), 0u);

  // Fresh unbudgeted run: rebuilds the withdrawn join and verifies as if
  // the trip never happened.
  {
    db::EvalEngine engine(&database, db::EvalStrategy::kNaive);
    ResourceGovernor governor;
    engine.SetGovernor(&governor);
    auto results = engine.EvaluateBatch({joined});
    ASSERT_TRUE(results[0].has_value());
    EXPECT_DOUBLE_EQ(*results[0], 3.0);
    EXPECT_EQ(engine.stats().joins_built, 1u);
    EXPECT_EQ(governor.usage().memory_bytes_charged, join_bytes);
  }
  EXPECT_EQ(database.relation_cache().size(), 1u);
}

// Starved memory budgets through the full pipeline with the relation cache
// left warm between budget levels (no per-run Clear, unlike the harness):
// degradation must stay graceful and a final unbudgeted rerun bit-clean.
TEST(ChaosTest, FuzzLiteStarvedMemoryBudgetsWithWarmRelationCache) {
  fi::DisarmAll();
  corpus::GeneratorOptions options;
  options.num_cases = 2;
  options.seed = 20260808;
  for (size_t c = 0; c < options.num_cases; ++c) {
    corpus::CorpusCase test_case = corpus::GenerateCase(c, options);
    for (uint64_t budget : {uint64_t{1}, uint64_t{1} << 14, uint64_t{0}}) {
      core::CheckOptions check_options;
      check_options.governor.max_memory_bytes = budget;
      auto checker =
          core::AggChecker::Create(&test_case.database, check_options);
      ASSERT_TRUE(checker.ok());
      auto report = checker->Check(test_case.document);
      ASSERT_TRUE(report.ok())
          << "case " << c << " budget " << budget << ": "
          << report.status().ToString();
      for (const auto& verdict : report->verdicts) {
        if (verdict.partial) {
          EXPECT_FALSE(verdict.likely_erroneous)
              << "partial claim flagged erroneous (case " << c
              << ", memory budget " << budget << ")";
        }
      }
      if (budget == 0) {
        // Unlimited rerun after the starved ones: nothing partial, and the
        // cache (possibly emptied by withdrawals) rebuilt what it needed.
        EXPECT_EQ(report->NumPartial(), 0u);
        EXPECT_FALSE(report->governor_usage.exhausted);
      }
    }
  }
}

}  // namespace
}  // namespace aggchecker
