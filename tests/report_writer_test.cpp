#include "core/report_writer.h"

#include <gtest/gtest.h>

#include "corpus/embedded_articles.h"

namespace aggchecker {
namespace core {
namespace {

struct ReportFixture {
  ReportFixture() : test_case(corpus::MakeNflCase()) {
    auto checker = AggChecker::Create(&test_case.database);
    auto r = checker->Check(test_case.document);
    report = std::move(*r);
  }
  corpus::CorpusCase test_case;
  CheckReport report;
};

const ReportFixture& Fixture() {
  static const ReportFixture* kFixture = new ReportFixture();
  return *kFixture;
}

TEST(ReportWriterTest, ProducesStandaloneHtml) {
  const auto& f = Fixture();
  std::string html = WriteHtmlReport(f.test_case.document, f.report);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  EXPECT_NE(html.find("<style>"), std::string::npos);
  // Title and headings present (apostrophes pass through unescaped).
  EXPECT_NE(html.find("The NFL's Uneven History"), std::string::npos);
  EXPECT_NE(html.find("<h2>"), std::string::npos);
}

TEST(ReportWriterTest, ClaimsWrappedAndDetailed) {
  const auto& f = Fixture();
  std::string html = WriteHtmlReport(f.test_case.document, f.report);
  EXPECT_NE(html.find("class=\"verified\""), std::string::npos);
  // The NFL case has two erroneous claims; at least one should be flagged.
  EXPECT_NE(html.find("class=\"flagged\""), std::string::npos);
  EXPECT_NE(html.find("LIKELY ERRONEOUS"), std::string::npos);
  EXPECT_NE(html.find("claim-card"), std::string::npos);
  // Per-claim SQL appears.
  EXPECT_NE(html.find("SELECT"), std::string::npos);
  // One card per claim.
  size_t cards = 0;
  for (size_t pos = html.find("claim-card"); pos != std::string::npos;
       pos = html.find("claim-card", pos + 1)) {
    ++cards;
  }
  // One CSS rule mention + one per claim (class attribute), conservative:
  EXPECT_GE(cards, f.report.verdicts.size());
}

TEST(ReportWriterTest, EscapesHtmlInContent) {
  db::Database database("x");
  db::Table t("data<b>");
  (void)t.AddColumn("col", db::ValueType::kString);
  (void)t.AddRow({db::Value(std::string("<script>alert(1)</script>"))});
  (void)t.AddRow({db::Value(std::string("plain"))});
  (void)database.AddTable(std::move(t));
  auto doc = text::ParseDocument("The data lists 2 rows in total.");
  auto checker = AggChecker::Create(&database);
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  std::string html = WriteHtmlReport(*doc, *report);
  EXPECT_EQ(html.find("<script>"), std::string::npos);
}

TEST(ReportWriterTest, TitleNoteIncluded) {
  const auto& f = Fixture();
  std::string html =
      WriteHtmlReport(f.test_case.document, f.report, "review draft #2");
  EXPECT_NE(html.find("review draft #2"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace aggchecker
