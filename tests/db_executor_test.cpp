#include "db/executor.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace aggchecker {
namespace db {
namespace {

using testing_fixtures::CountStar;
using testing_fixtures::MakeNflDatabase;
using testing_fixtures::MakeOrdersDatabase;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : nfl_(MakeNflDatabase()), shop_(MakeOrdersDatabase()) {}

  double Eval(const Database& database, const SimpleAggregateQuery& q) {
    QueryExecutor exec(&database);
    auto r = exec.Execute(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->has_value()) << q.ToSql();
    return r->value();
  }

  Database nfl_;
  Database shop_;
};

// The paper's Example 1: four lifetime bans, three for repeated substance
// abuse.
TEST_F(ExecutorTest, PaperExampleOneLifetimeBans) {
  auto q = CountStar("nflsuspensions",
                     {{{"nflsuspensions", "Games"},
                       Value(std::string("indef"))}});
  EXPECT_DOUBLE_EQ(Eval(nfl_, q), 4.0);

  q.predicates.push_back(
      {{"nflsuspensions", "Category"},
       Value(std::string("substance abuse repeated offense"))});
  EXPECT_DOUBLE_EQ(Eval(nfl_, q), 3.0);
}

TEST_F(ExecutorTest, CountStarNoPredicates) {
  EXPECT_DOUBLE_EQ(Eval(nfl_, CountStar("nflsuspensions")), 10.0);
}

TEST_F(ExecutorTest, CountColumnSkipsNulls) {
  Database database;
  auto data = csv::Parse("x\n1\n\n3\n");
  ASSERT_TRUE(database.AddTable(*Table::FromCsv("t", *data)).ok());
  SimpleAggregateQuery q;
  q.fn = AggFn::kCount;
  q.agg_column = {"t", "x"};
  EXPECT_DOUBLE_EQ(Eval(database, q), 2.0);
}

TEST_F(ExecutorTest, CountDistinct) {
  SimpleAggregateQuery q;
  q.fn = AggFn::kCountDistinct;
  q.agg_column = {"nflsuspensions", "Category"};
  EXPECT_DOUBLE_EQ(Eval(nfl_, q), 4.0);
}

TEST_F(ExecutorTest, SumAvgMinMax) {
  SimpleAggregateQuery q;
  q.agg_column = {"orders", "amount"};
  q.fn = AggFn::kSum;
  EXPECT_DOUBLE_EQ(Eval(shop_, q), 124.0);  // 5+7.5+2.5+10+99
  q.fn = AggFn::kAvg;
  EXPECT_DOUBLE_EQ(Eval(shop_, q), 124.0 / 5);
  q.fn = AggFn::kMin;
  EXPECT_DOUBLE_EQ(Eval(shop_, q), 2.5);
  q.fn = AggFn::kMax;
  EXPECT_DOUBLE_EQ(Eval(shop_, q), 99.0);
}

TEST_F(ExecutorTest, JoinedQueryWithPredicateOnOtherTable) {
  // Sum of order amounts for customers in the east region; the dangling
  // order (customer 9) drops out of the join.
  SimpleAggregateQuery q;
  q.fn = AggFn::kSum;
  q.agg_column = {"orders", "amount"};
  q.predicates = {{{"customers", "region"}, Value(std::string("east"))}};
  EXPECT_DOUBLE_EQ(Eval(shop_, q), 22.5);  // 5 + 7.5 + 10
}

TEST_F(ExecutorTest, JoinedCountStar) {
  auto q = CountStar("orders");
  q.predicates = {{{"customers", "region"}, Value(std::string("west"))}};
  EXPECT_DOUBLE_EQ(Eval(shop_, q), 1.0);
}

TEST_F(ExecutorTest, PercentageSingleTable) {
  // Percentage of suspensions that are 'gambling': 1/10 = 10%.
  SimpleAggregateQuery q;
  q.fn = AggFn::kPercentage;
  q.agg_column = {"nflsuspensions", "Category"};
  q.predicates = {
      {{"nflsuspensions", "Category"}, Value(std::string("gambling"))}};
  EXPECT_DOUBLE_EQ(Eval(nfl_, q), 10.0);
}

TEST_F(ExecutorTest, PercentageWithExtraRestriction) {
  // Among Games='indef', percentage with Category='gambling': 1/4 = 25%.
  SimpleAggregateQuery q;
  q.fn = AggFn::kPercentage;
  q.agg_column = {"nflsuspensions", "Category"};
  q.predicates = {
      {{"nflsuspensions", "Category"}, Value(std::string("gambling"))},
      {{"nflsuspensions", "Games"}, Value(std::string("indef"))}};
  EXPECT_DOUBLE_EQ(Eval(nfl_, q), 25.0);
}

TEST_F(ExecutorTest, ConditionalProbability) {
  // P(Category = repeated substance abuse | Games = indef) = 3/4.
  SimpleAggregateQuery q;
  q.fn = AggFn::kConditionalProbability;
  q.agg_column = {"nflsuspensions", ""};
  q.predicates = {
      {{"nflsuspensions", "Games"}, Value(std::string("indef"))},
      {{"nflsuspensions", "Category"},
       Value(std::string("substance abuse repeated offense"))}};
  EXPECT_DOUBLE_EQ(Eval(nfl_, q), 75.0);
}

TEST_F(ExecutorTest, EmptyMatchSemantics) {
  QueryExecutor exec(&nfl_);
  Predicate nomatch{{"nflsuspensions", "Team"}, Value(std::string("ZZZ"))};

  auto count = CountStar("nflsuspensions", {nomatch});
  auto r = exec.Execute(count);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->value(), 0.0);  // COUNT over empty set is 0

  SimpleAggregateQuery avg;
  avg.fn = AggFn::kAvg;
  avg.agg_column = {"nflsuspensions", "Name"};  // non-numeric, invalid
  EXPECT_FALSE(exec.Execute(avg).ok());

  SimpleAggregateQuery sum;
  sum.fn = AggFn::kSum;
  sum.agg_column = {"orders", "amount"};
  sum.predicates = {{{"orders", "id"}, Value(int64_t{999})}};
  QueryExecutor shop_exec(&shop_);
  auto sr = shop_exec.Execute(sum);
  ASSERT_TRUE(sr.ok());
  EXPECT_FALSE(sr->has_value());  // SUM over empty set is NULL
}

TEST_F(ExecutorTest, ValidationErrors) {
  QueryExecutor exec(&nfl_);
  // Star with non-count function.
  SimpleAggregateQuery q;
  q.fn = AggFn::kSum;
  q.agg_column = {"nflsuspensions", ""};
  EXPECT_FALSE(exec.Validate(q).ok());
  // Unknown aggregation column.
  q.agg_column = {"nflsuspensions", "nope"};
  EXPECT_FALSE(exec.Validate(q).ok());
  // Unknown predicate column.
  q = CountStar("nflsuspensions",
                {{{"nflsuspensions", "nope"}, Value(int64_t{1})}});
  EXPECT_FALSE(exec.Validate(q).ok());
  // ConditionalProbability without condition.
  SimpleAggregateQuery cp;
  cp.fn = AggFn::kConditionalProbability;
  cp.agg_column = {"nflsuspensions", ""};
  EXPECT_FALSE(exec.Validate(cp).ok());
}

TEST_F(ExecutorTest, PredicateOnNumericColumn) {
  SimpleAggregateQuery q = CountStar(
      "orders", {{{"orders", "customer_id"}, Value(int64_t{1})}});
  EXPECT_DOUBLE_EQ(Eval(shop_, q), 2.0);
}

TEST_F(ExecutorTest, ScanStatsAccumulate) {
  QueryExecutor exec(&nfl_);
  ScanStats stats;
  (void)exec.Execute(CountStar("nflsuspensions"), &stats);
  EXPECT_EQ(stats.rows_scanned, 10u);
  (void)exec.Execute(CountStar("nflsuspensions"), &stats);
  EXPECT_EQ(stats.rows_scanned, 20u);
}

TEST(QueryTest, CanonicalKeyIgnoresPredicateOrder) {
  SimpleAggregateQuery a = CountStar(
      "t", {{{"t", "x"}, Value(int64_t{1})}, {{"t", "y"}, Value(int64_t{2})}});
  SimpleAggregateQuery b = CountStar(
      "t", {{{"t", "y"}, Value(int64_t{2})}, {{"t", "x"}, Value(int64_t{1})}});
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(QueryTest, ConditionalProbabilityOrderSensitive) {
  SimpleAggregateQuery a;
  a.fn = AggFn::kConditionalProbability;
  a.agg_column = {"t", ""};
  a.predicates = {{{"t", "x"}, Value(int64_t{1})},
                  {{"t", "y"}, Value(int64_t{2})}};
  SimpleAggregateQuery b = a;
  std::swap(b.predicates[0], b.predicates[1]);
  EXPECT_FALSE(a == b);  // different condition -> different query
}

TEST(QueryTest, ToSqlRendering) {
  SimpleAggregateQuery q;
  q.fn = AggFn::kCount;
  q.agg_column = {"nflsuspensions", ""};
  q.predicates = {
      {{"nflsuspensions", "Games"}, Value(std::string("indef"))}};
  EXPECT_EQ(q.ToSql(),
            "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef'");
}

}  // namespace
}  // namespace db
}  // namespace aggchecker
