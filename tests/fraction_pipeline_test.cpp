// End-to-end checks for fraction-phrase claims ("half of", "one in five"):
// the detector reads them as percentage claims and the checker matches them
// against Percentage / ConditionalProbability candidates.

#include <gtest/gtest.h>

#include "claims/claim_detector.h"
#include "core/aggchecker.h"
#include "text/document.h"

namespace aggchecker {
namespace {

db::Database MakeSurveyDb(int yes_rows, int no_rows) {
  db::Database database("survey");
  db::Table t("answers");
  (void)t.AddColumn("Respondent", db::ValueType::kLong);
  (void)t.AddColumn("Reply", db::ValueType::kString);
  int64_t id = 0;
  for (int i = 0; i < yes_rows; ++i) {
    (void)t.AddRow({db::Value(++id), db::Value(std::string("yes"))});
  }
  for (int i = 0; i < no_rows; ++i) {
    (void)t.AddRow({db::Value(++id), db::Value(std::string("no"))});
  }
  (void)database.AddTable(std::move(t));
  return database;
}

TEST(FractionPipelineTest, HalfOfVerifiesWhenTrue) {
  auto database = MakeSurveyDb(50, 50);
  auto doc = text::ParseDocument(
      "<h1>Survey replies</h1>\n"
      "<p>Half of the respondents gave the reply yes.</p>\n");
  ASSERT_TRUE(doc.ok());
  auto detected = claims::ClaimDetector().Detect(*doc);
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_TRUE(detected[0].is_percent());
  EXPECT_DOUBLE_EQ(detected[0].claimed_value(), 50);

  auto checker = core::AggChecker::Create(&database);
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->verdicts.size(), 1u);
  EXPECT_FALSE(report->verdicts[0].likely_erroneous)
      << report->verdicts[0].best()->query.ToSql();
}

TEST(FractionPipelineTest, HalfOfFlaggedWhenFalse) {
  // Only 23% said yes; "half" must be flagged. (130 rows, so no incidental
  // aggregate — e.g. the average respondent id — lands near 50.)
  auto database = MakeSurveyDb(30, 100);
  auto doc = text::ParseDocument(
      "<h1>Survey replies</h1>\n"
      "<p>Half of the respondents gave the reply yes.</p>\n");
  auto checker = core::AggChecker::Create(&database);
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->verdicts.size(), 1u);
  EXPECT_TRUE(report->verdicts[0].likely_erroneous);
}

TEST(FractionPipelineTest, OneInFiveAsPercentage) {
  auto database = MakeSurveyDb(20, 80);
  auto doc = text::ParseDocument(
      "<h1>Survey replies</h1>\n"
      "<p>One in five respondents gave the reply yes.</p>\n");
  auto detected = claims::ClaimDetector().Detect(*doc);
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_DOUBLE_EQ(detected[0].claimed_value(), 20);
  auto checker = core::AggChecker::Create(&database);
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->verdicts[0].likely_erroneous);
}

TEST(FractionPipelineTest, RoundingAbsorbsNearMisses) {
  // 48% reads as "half" under significant-digit rounding (50 has one
  // significant digit; 48.0 rounds to 50).
  auto database = MakeSurveyDb(48, 52);
  auto doc = text::ParseDocument(
      "<h1>Survey replies</h1>\n"
      "<p>Half of the respondents gave the reply yes.</p>\n");
  auto checker = core::AggChecker::Create(&database);
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->verdicts[0].likely_erroneous);
}

}  // namespace
}  // namespace aggchecker
