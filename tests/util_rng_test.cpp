#include "util/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace aggchecker {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    if (v == -2) saw_lo = true;
    if (v == 2) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextIntDegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.NextInt(5, 5), 5);
  EXPECT_EQ(rng.NextInt(5, 4), 5);  // inverted range collapses to lo
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextGaussianMoments) {
  Rng rng(13);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian(10.0, 2.0);
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, NextWeightedRespectsWeights) {
  Rng rng(17);
  std::map<size_t, int> counts;
  for (int i = 0; i < 10000; ++i) {
    counts[rng.NextWeighted({1.0, 0.0, 3.0})]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 2);
}

TEST(RngTest, NextWeightedAllZeroFallsBack) {
  Rng rng(19);
  EXPECT_EQ(rng.NextWeighted({0.0, 0.0}), 0u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace aggchecker
