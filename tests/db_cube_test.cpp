#include "db/cube.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace aggchecker {
namespace db {
namespace {

using testing_fixtures::MakeNflDatabase;
using testing_fixtures::MakeOrdersDatabase;

class CubeTest : public ::testing::Test {
 protected:
  CubeTest() : nfl_(MakeNflDatabase()) {}
  Database nfl_;
};

TEST_F(CubeTest, SingleDimensionCountsMatchPaperExample) {
  ColumnRef games{"nflsuspensions", "Games"};
  std::vector<Value> literals{Value(std::string("indef"))};
  CubeAggregate count_star;
  auto cube = ExecuteCube(nfl_, {games}, {literals}, {count_star});
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();

  // Games = 'indef' -> 4 lifetime bans.
  EXPECT_DOUBLE_EQ((*cube)->Lookup({0}, 0).value(), 4.0);
  // Rollup (no restriction) -> all 10 rows.
  EXPECT_DOUBLE_EQ((*cube)->Lookup({kAllBucket}, 0).value(), 10.0);
  // Default bucket: everything not 'indef' -> 6 rows.
  EXPECT_DOUBLE_EQ((*cube)->Lookup({kDefaultBucket}, 0).value(), 6.0);
}

TEST_F(CubeTest, TwoDimensionsWithMultipleAggregates) {
  ColumnRef games{"nflsuspensions", "Games"};
  ColumnRef category{"nflsuspensions", "Category"};
  std::vector<Value> games_lits{Value(std::string("indef"))};
  std::vector<Value> cat_lits{
      Value(std::string("gambling")),
      Value(std::string("substance abuse repeated offense"))};
  CubeAggregate count_star;
  CubeAggregate count_distinct_team;
  count_distinct_team.fn = AggFn::kCountDistinct;
  count_distinct_team.column = {"nflsuspensions", "Team"};

  auto cube = ExecuteCube(nfl_, {games, category}, {games_lits, cat_lits},
                          {count_star, count_distinct_team});
  ASSERT_TRUE(cube.ok());

  // indef + gambling -> 1 row (the paper's claimed result 'one').
  EXPECT_DOUBLE_EQ((*cube)->Lookup({0, 0}, 0).value(), 1.0);
  // indef + repeated substance abuse -> 3 rows.
  EXPECT_DOUBLE_EQ((*cube)->Lookup({0, 1}, 0).value(), 3.0);
  // indef, any category -> 4 rows, 4 distinct teams.
  EXPECT_DOUBLE_EQ((*cube)->Lookup({0, kAllBucket}, 0).value(), 4.0);
  EXPECT_DOUBLE_EQ((*cube)->Lookup({0, kAllBucket}, 1).value(), 4.0);
  // No restriction at all.
  EXPECT_DOUBLE_EQ((*cube)->Lookup({kAllBucket, kAllBucket}, 0).value(),
                   10.0);
}

TEST_F(CubeTest, MissingCellMeansNoRows) {
  ColumnRef team{"nflsuspensions", "Team"};
  std::vector<Value> lits{Value(std::string("ZZZ"))};  // matches nothing
  CubeAggregate count_star;
  auto cube = ExecuteCube(nfl_, {team}, {lits}, {count_star});
  ASSERT_TRUE(cube.ok());
  EXPECT_FALSE((*cube)->Lookup({0}, 0).has_value());
}

TEST_F(CubeTest, NullDimValuesLandInDefaultBucket) {
  Database database;
  auto data = csv::Parse("k,v\na,1\n,2\nb,3\n");
  ASSERT_TRUE(database.AddTable(*Table::FromCsv("t", *data)).ok());
  ColumnRef k{"t", "k"};
  CubeAggregate count_star;
  auto cube = ExecuteCube(database, {k}, {{Value(std::string("a"))}},
                          {count_star});
  ASSERT_TRUE(cube.ok());
  EXPECT_DOUBLE_EQ((*cube)->Lookup({0}, 0).value(), 1.0);
  // Default bucket holds 'b' and the NULL row.
  EXPECT_DOUBLE_EQ((*cube)->Lookup({kDefaultBucket}, 0).value(), 2.0);
  EXPECT_DOUBLE_EQ((*cube)->Lookup({kAllBucket}, 0).value(), 3.0);
}

TEST_F(CubeTest, ZeroDimensionCube) {
  CubeAggregate count_star;
  count_star.column.table = "nflsuspensions";
  auto cube = ExecuteCube(nfl_, {}, {}, {count_star});
  ASSERT_TRUE(cube.ok());
  EXPECT_DOUBLE_EQ((*cube)->Lookup({}, 0).value(), 10.0);
}

TEST_F(CubeTest, RatioAggregatesRejected) {
  CubeAggregate pct;
  pct.fn = AggFn::kPercentage;
  EXPECT_FALSE(ExecuteCube(nfl_, {}, {}, {pct}).ok());
}

TEST_F(CubeTest, EmptyAggregateListRejected) {
  EXPECT_FALSE(ExecuteCube(nfl_, {}, {}, {}).ok());
}

TEST_F(CubeTest, DimLiteralSizeMismatchRejected) {
  ColumnRef games{"nflsuspensions", "Games"};
  CubeAggregate count_star;
  EXPECT_FALSE(ExecuteCube(nfl_, {games}, {}, {count_star}).ok());
}

TEST_F(CubeTest, CubeOverJoin) {
  auto shop = MakeOrdersDatabase();
  ColumnRef region{"customers", "region"};
  CubeAggregate sum_amount;
  sum_amount.fn = AggFn::kSum;
  sum_amount.column = {"orders", "amount"};
  auto cube = ExecuteCube(shop, {region},
                          {{Value(std::string("east")),
                            Value(std::string("west"))}},
                          {sum_amount});
  ASSERT_TRUE(cube.ok());
  EXPECT_DOUBLE_EQ((*cube)->Lookup({0}, 0).value(), 22.5);
  EXPECT_DOUBLE_EQ((*cube)->Lookup({1}, 0).value(), 2.5);
  // Dangling order (customer 9) excluded by the inner join.
  EXPECT_DOUBLE_EQ((*cube)->Lookup({kAllBucket}, 0).value(), 25.0);
}

TEST_F(CubeTest, AggregateIndexLookup) {
  CubeAggregate count_star;
  CubeAggregate max_amount;
  max_amount.fn = AggFn::kMax;
  max_amount.column = {"orders", "amount"};
  auto shop = MakeOrdersDatabase();
  auto cube = ExecuteCube(shop, {}, {}, {count_star, max_amount});
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ((*cube)->AggregateIndex(count_star), 0);
  EXPECT_EQ((*cube)->AggregateIndex(max_amount), 1);
  CubeAggregate other;
  other.fn = AggFn::kMin;
  other.column = {"orders", "amount"};
  EXPECT_EQ((*cube)->AggregateIndex(other), -1);
}

}  // namespace
}  // namespace db
}  // namespace aggchecker
