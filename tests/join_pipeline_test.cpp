// End-to-end pipeline test across a PK-FK join: the campaign-donations
// case requires candidates generated over two tables and cube execution
// over the joined relation.

#include <gtest/gtest.h>

#include "claims/claim_detector.h"
#include "core/aggchecker.h"
#include "corpus/embedded_articles.h"
#include "corpus/metrics.h"
#include "db/executor.h"
#include "util/rounding.h"

namespace aggchecker {
namespace {

class JoinPipelineTest : public ::testing::Test {
 protected:
  static const corpus::CorpusCase& Case() {
    static const corpus::CorpusCase* kCase =
        new corpus::CorpusCase(corpus::MakeDonationsJoinCase());
    return *kCase;
  }
};

TEST_F(JoinPipelineTest, GroundTruthConsistent) {
  const auto& c = Case();
  db::QueryExecutor exec(&c.database);
  for (size_t i = 0; i < c.ground_truth.size(); ++i) {
    const auto& g = c.ground_truth[i];
    auto r = exec.Execute(g.query);
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().ToString();
    ASSERT_TRUE(r->has_value()) << i;
    EXPECT_NEAR(**r, g.true_value, 1e-9) << g.query.ToSql();
    EXPECT_EQ(g.is_erroneous,
              !rounding::RoundsTo(g.true_value, g.claimed_value))
        << i;
  }
  // The specific joined values.
  EXPECT_DOUBLE_EQ(c.ground_truth[2].true_value, 25);  // democratic gifts
  EXPECT_DOUBLE_EQ(c.ground_truth[3].true_value, 500);
  EXPECT_DOUBLE_EQ(c.ground_truth[5].true_value, 4);   // vermont gifts
}

TEST_F(JoinPipelineTest, DetectorAligned) {
  const auto& c = Case();
  auto detected = claims::ClaimDetector().Detect(c.document);
  ASSERT_EQ(detected.size(), c.ground_truth.size());
  for (size_t i = 0; i < detected.size(); ++i) {
    EXPECT_NEAR(detected[i].claimed_value(),
                c.ground_truth[i].claimed_value, 1e-9)
        << i;
  }
}

TEST_F(JoinPipelineTest, CatalogSpansBothTables) {
  const auto& c = Case();
  auto catalog = fragments::FragmentCatalog::Build(c.database);
  ASSERT_TRUE(catalog.ok());
  // Star fragments for both tables plus all 8 columns.
  EXPECT_EQ(catalog->fragments(fragments::FragmentType::kAggColumn).size(),
            2u + 8u);
  // A predicate fragment on the candidates side exists.
  EXPECT_GE(catalog->PredicateColumnIndex({"candidates", "Party"}), 0);
  EXPECT_GE(catalog->PredicateColumnIndex({"gifts", "DonorSector"}), 0);
}

TEST_F(JoinPipelineTest, CheckerResolvesJoinClaims) {
  const auto& c = Case();
  core::CheckOptions options;
  options.report_top_k = 20;
  auto checker = core::AggChecker::Create(&c.database, options);
  ASSERT_TRUE(checker.ok());
  auto report = checker->Check(c.document);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->verdicts.size(), c.ground_truth.size());

  auto coverage = corpus::ScoreCoverage(c, *report);
  // The joined claims must be translatable: the right query within top-10
  // for most claims of this document.
  EXPECT_GE(coverage.TopK(10), 60.0);

  // The erroneous vermont claim is flagged; the correct joined claims
  // (democratic count, republican average) are not.
  auto detection = corpus::ScoreErrorDetection(c, *report);
  EXPECT_GE(detection.Recall(), 1.0);  // the single error is found
  EXPECT_FALSE(report->verdicts[2].likely_erroneous)
      << report->verdicts[2].best()->query.ToSql();
}

TEST_F(JoinPipelineTest, BestJoinQueryActuallyJoins) {
  const auto& c = Case();
  core::CheckOptions options;
  options.report_top_k = 20;
  auto checker = core::AggChecker::Create(&c.database, options);
  auto report = checker->Check(c.document);
  ASSERT_TRUE(report.ok());
  // Claim "25 democratic donations": ground truth references both tables.
  size_t rank =
      corpus::GroundTruthRank(c.ground_truth[2], report->verdicts[2]);
  EXPECT_GE(rank, 1u);
  EXPECT_LE(rank, 10u);
  EXPECT_EQ(c.ground_truth[2].query.ReferencedTables().size(), 2u);
}

}  // namespace
}  // namespace aggchecker
