// RetryPolicy backoff arithmetic: capped exponential, fully deterministic
// (no jitter), and disabled outright by a zero initial backoff — the knob
// chaos tests use to keep sweeps sleep-free.

#include <gtest/gtest.h>

#include "util/retry.h"

namespace aggchecker {
namespace {

TEST(RetryTest, DefaultPolicyBacksOffExponentiallyWithCap) {
  RetryPolicy policy;  // initial 1ms, x2, capped at 8ms
  EXPECT_EQ(BackoffMillis(policy, 1), 1u);
  EXPECT_EQ(BackoffMillis(policy, 2), 2u);
  EXPECT_EQ(BackoffMillis(policy, 3), 4u);
  EXPECT_EQ(BackoffMillis(policy, 4), 8u);
  EXPECT_EQ(BackoffMillis(policy, 5), 8u) << "cap holds from here on";
  EXPECT_EQ(BackoffMillis(policy, 30), 8u) << "no overflow past the cap";
}

TEST(RetryTest, ZeroInitialBackoffDisablesSleeping) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 0;
  for (uint32_t retry = 1; retry <= 6; ++retry) {
    EXPECT_EQ(BackoffMillis(policy, retry), 0u);
  }
  SleepForBackoff(policy, 3);  // must be a no-op, not a zero-length syscall
}

TEST(RetryTest, CustomMultiplierAndCap) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 2;
  policy.backoff_multiplier = 3;
  policy.max_backoff_ms = 10;
  EXPECT_EQ(BackoffMillis(policy, 1), 2u);
  EXPECT_EQ(BackoffMillis(policy, 2), 6u);
  EXPECT_EQ(BackoffMillis(policy, 3), 10u) << "18ms clamps to the cap";
  EXPECT_EQ(BackoffMillis(policy, 4), 10u);
}

TEST(RetryTest, RecoveryOptionsDefaultsMatchDesign) {
  RecoveryOptions options;
  EXPECT_TRUE(options.enabled);
  EXPECT_TRUE(options.fallback_ladder);
  EXPECT_EQ(options.retry.max_attempts, 3u);
  EXPECT_DOUBLE_EQ(options.watchdog_stall_multiple, 32.0);
}

}  // namespace
}  // namespace aggchecker
