#include "sim/user_study.h"

#include <gtest/gtest.h>

#include "corpus/corpus.h"
#include "corpus/embedded_articles.h"
#include "sim/crowd_study.h"

namespace aggchecker {
namespace sim {
namespace {

/// Small fixture: a 3-article study over the embedded cases (fast enough
/// for unit testing; the full 6-article study runs in the bench).
class UserStudyTest : public ::testing::Test {
 protected:
  static const StudyResult& Result() {
    static const StudyResult* kResult = [] {
      static std::vector<corpus::CorpusCase> corpus =
          corpus::EmbeddedArticles();
      StudyConfig config;
      config.num_users = 4;
      UserStudy study(&corpus, {0, 1, 2}, config);
      auto r = study.Run();
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      return new StudyResult(std::move(*r));
    }();
    return *kResult;
  }
};

TEST_F(UserStudyTest, SessionsCoverUsersArticlesAndBothTools) {
  const auto& result = Result();
  EXPECT_EQ(result.sessions.size(), 4u * 3u);
  size_t ac = 0, sql = 0;
  for (const auto& s : result.sessions) {
    (s.tool == Tool::kAggChecker ? ac : sql) += 1;
    EXPECT_GT(s.time_limit, 0.0);
    // Events are time-ordered and within the limit.
    double prev = 0;
    for (const auto& e : s.events) {
      EXPECT_GE(e.timestamp, prev);
      EXPECT_LE(e.timestamp, s.time_limit);
      prev = e.timestamp;
    }
  }
  EXPECT_EQ(ac, sql);
}

TEST_F(UserStudyTest, AggCheckerUsersAreFaster) {
  const auto& result = Result();
  // The paper's headline: ~6x faster in average. We only require a clear
  // factor, driven by the measured top-k coverage.
  double ac_total = 0, sql_total = 0;
  size_t users = 4;
  for (size_t u = 0; u < users; ++u) {
    ac_total += result.ThroughputByUser(u, Tool::kAggChecker);
    sql_total += result.ThroughputByUser(u, Tool::kSql);
  }
  EXPECT_GT(ac_total, 2.0 * sql_total);
}

TEST_F(UserStudyTest, ActionSharesSumToHundred) {
  auto shares = Result().ComputeActionShares();
  EXPECT_NEAR(shares.top1 + shares.top5 + shares.top10 + shares.custom,
              100.0, 1e-6);
  // Most verifications resolve within the top-5 (Table 3: 82.6%).
  EXPECT_GT(shares.top1 + shares.top5, 60.0);
}

TEST_F(UserStudyTest, ErrorDetectionFavorsAggChecker) {
  const auto& result = Result();
  auto ac = result.ErrorDetection(Tool::kAggChecker);
  auto sql = result.ErrorDetection(Tool::kSql);
  EXPECT_GT(ac.Recall(), sql.Recall());
  EXPECT_GT(ac.F1(), sql.F1());
}

TEST_F(UserStudyTest, VerifiedOverTimeMonotone) {
  const auto& result = Result();
  auto curve = result.VerifiedOverTime(0, Tool::kAggChecker, 30.0);
  ASSERT_FALSE(curve.empty());
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
}

TEST_F(UserStudyTest, SurveySkewsTowardAggChecker) {
  auto row = Result().Survey("overall");
  EXPECT_EQ(row.sql_strong + row.sql_weak + row.neutral + row.ac_weak +
                row.ac_strong,
            4);
  EXPECT_GT(row.ac_weak + row.ac_strong, row.sql_weak + row.sql_strong);
}

TEST(CrowdStudyTest, DocumentScopeSheetsFindNothing) {
  auto article = corpus::MakeEtiquetteCase();
  auto result = RunCrowdStudy(article, CrowdScope::kDocument);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The paper's Table 11: spreadsheet crowd workers at document scope
  // identified zero erroneous claims; AggChecker workers did far better.
  EXPECT_GT(result->aggchecker.Recall(), result->sheet.Recall());
  EXPECT_LT(result->sheet.Recall(), 0.2);
}

TEST(CrowdStudyTest, ParagraphScopeEasierForEveryone) {
  auto article = corpus::MakeEtiquetteCase();
  auto doc_scope = RunCrowdStudy(article, CrowdScope::kDocument);
  auto para_scope = RunCrowdStudy(article, CrowdScope::kParagraph);
  ASSERT_TRUE(doc_scope.ok());
  ASSERT_TRUE(para_scope.ok());
  EXPECT_GE(para_scope->sheet.Recall(), doc_scope->sheet.Recall());
  EXPECT_GE(para_scope->aggchecker.Recall(), doc_scope->aggchecker.Recall());
  // And the AggChecker still wins at paragraph scope.
  EXPECT_GT(para_scope->aggchecker.F1(), para_scope->sheet.F1());
}

TEST(CrowdStudyTest, DeterministicInSeed) {
  auto article = corpus::MakeNflCase();
  auto a = RunCrowdStudy(article, CrowdScope::kDocument);
  auto b = RunCrowdStudy(article, CrowdScope::kDocument);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->aggchecker.true_positives, b->aggchecker.true_positives);
  EXPECT_EQ(a->sheet.false_positives, b->sheet.false_positives);
}

}  // namespace
}  // namespace sim
}  // namespace aggchecker
