// Column lazy-representation tests: flat typed views for the vectorized
// cube kernels, and the thread-safety regression for concurrent first
// builds of the lazy dictionary / flat view (run under TSan via the
// `concurrency` label). PR 2's parallel shell-fill workers could race the
// first BuildDictionary() on a shared column; builds are now guarded.

#include "db/column.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace aggchecker {
namespace db {
namespace {

void FillLongColumn(Column& col, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (i % 7 == 3) {
      col.Append(Value());  // NULL
    } else {
      col.Append(Value(static_cast<int64_t>(i % 101)));
    }
  }
}

TEST(ColumnFlatViewTest, LongColumnExposesLongsAndCoercedDoubles) {
  Column col("v", ValueType::kLong);
  col.Append(Value(int64_t{42}));
  col.Append(Value());
  col.Append(Value(int64_t{-7}));
  const Column::FlatView& flat = col.Flat();
  ASSERT_EQ(flat.size, 3u);
  ASSERT_NE(flat.longs, nullptr);
  ASSERT_NE(flat.doubles, nullptr);
  ASSERT_NE(flat.nulls, nullptr);
  EXPECT_EQ(flat.longs[0], 42);
  EXPECT_EQ(flat.longs[2], -7);
  EXPECT_DOUBLE_EQ(flat.doubles[0], 42.0);
  EXPECT_DOUBLE_EQ(flat.doubles[2], -7.0);
  EXPECT_EQ(flat.nulls[0], 0);
  EXPECT_EQ(flat.nulls[1], 1);
  EXPECT_EQ(flat.nulls[2], 0);
}

TEST(ColumnFlatViewTest, MixedDoubleColumnCoercesLikeToDouble) {
  // A DOUBLE-typed column may hold long cells; the flat view must show
  // exactly Value::ToDouble() of each, since the vectorized kernels must
  // see bit-for-bit what the row-at-a-time Aggregator sees.
  Column col("v", ValueType::kDouble);
  col.Append(Value(int64_t{3}));
  col.Append(Value(2.5));
  col.Append(Value(std::nan("")));
  const Column::FlatView& flat = col.Flat();
  ASSERT_NE(flat.doubles, nullptr);
  EXPECT_EQ(flat.longs, nullptr);
  EXPECT_DOUBLE_EQ(flat.doubles[0], 3.0);
  EXPECT_DOUBLE_EQ(flat.doubles[1], 2.5);
  EXPECT_TRUE(std::isnan(flat.doubles[2]));
}

TEST(ColumnFlatViewTest, StringColumnHasOnlyNullFlags) {
  Column col("v", ValueType::kString);
  col.Append(Value("a"));
  col.Append(Value());
  const Column::FlatView& flat = col.Flat();
  EXPECT_EQ(flat.longs, nullptr);
  EXPECT_EQ(flat.doubles, nullptr);
  ASSERT_NE(flat.nulls, nullptr);
  EXPECT_EQ(flat.nulls[0], 0);
  EXPECT_EQ(flat.nulls[1], 1);
}

TEST(ColumnFlatViewTest, AppendInvalidatesFlatViewAndDictionary) {
  Column col("v", ValueType::kLong);
  col.Append(Value(int64_t{1}));
  EXPECT_EQ(col.Flat().size, 1u);
  EXPECT_EQ(col.Codes().size(), 1u);
  col.Append(Value(int64_t{2}));
  EXPECT_EQ(col.Flat().size, 2u);
  EXPECT_EQ(col.Flat().longs[1], 2);
  EXPECT_EQ(col.Codes().size(), 2u);
  EXPECT_EQ(col.DistinctValues().size(), 2u);
}

// Regression (tsan): many threads hitting the *first* lazy dictionary
// build on a shared column must not race. Before the guard, concurrent
// BuildDictionary() calls mutated distinct_/codes_ unsynchronized.
TEST(ColumnConcurrencyTest, ConcurrentFirstDictionaryBuildIsSafe) {
  for (int round = 0; round < 4; ++round) {
    Column col("v", ValueType::kLong);
    FillLongColumn(col, 20000);
    std::vector<std::thread> threads;
    std::vector<size_t> distinct_sizes(8, 0);
    std::vector<int32_t> first_codes(8, -99);
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&col, &distinct_sizes, &first_codes, t] {
        distinct_sizes[static_cast<size_t>(t)] = col.DistinctValues().size();
        first_codes[static_cast<size_t>(t)] = col.Codes()[0];
      });
    }
    for (auto& thread : threads) thread.join();
    for (int t = 0; t < 8; ++t) {
      EXPECT_EQ(distinct_sizes[static_cast<size_t>(t)], 101u);
      EXPECT_EQ(first_codes[static_cast<size_t>(t)], 0);
    }
  }
}

// Same for the flat typed view, and for mixed dictionary + flat access —
// the two lazy builds share a mutex but have independent built flags.
TEST(ColumnConcurrencyTest, ConcurrentFlatAndDictionaryBuildsAreSafe) {
  for (int round = 0; round < 4; ++round) {
    Column col("v", ValueType::kLong);
    FillLongColumn(col, 20000);
    std::vector<std::thread> threads;
    std::vector<uint64_t> checksums(8, 0);
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&col, &checksums, t] {
        uint64_t sum = 0;
        if (t % 2 == 0) {
          const Column::FlatView& flat = col.Flat();
          for (size_t i = 0; i < flat.size; ++i) {
            if (!flat.nulls[i]) sum += static_cast<uint64_t>(flat.longs[i]);
          }
        } else {
          for (int32_t code : col.Codes()) {
            sum += code >= 0 ? static_cast<uint64_t>(code) : 1;
          }
        }
        checksums[static_cast<size_t>(t)] = sum;
      });
    }
    for (auto& thread : threads) thread.join();
    // All readers of the same representation agree.
    EXPECT_EQ(checksums[0], checksums[2]);
    EXPECT_EQ(checksums[0], checksums[4]);
    EXPECT_EQ(checksums[1], checksums[3]);
    EXPECT_EQ(checksums[1], checksums[5]);
  }
}

// Ingestion on a snapshot-backed column (DESIGN.md §16): concurrent
// first-touch Flat() readers on the zero-copy view are safe, and the first
// Append materializes the boxed values and detaches from the image — the
// rebuilt flat view owns its storage and includes the appended row. Run
// under TSan via the `concurrency` label: before the ingestion API, nothing
// ever appended to a FromSnapshot column.
TEST(ColumnConcurrencyTest, SnapshotColumnFlatReadersThenAppendDetaches) {
  constexpr size_t kRows = 4096;
  for (int round = 0; round < 4; ++round) {
    std::vector<uint8_t> nulls(kRows, 0);
    std::vector<uint8_t> tags(kRows, static_cast<uint8_t>(ValueType::kLong));
    std::vector<int64_t> longs(kRows);
    std::vector<double> doubles(kRows);
    std::vector<int32_t> codes(kRows);
    ColumnSnapshotData data;
    for (size_t r = 0; r < kRows; ++r) {
      longs[r] = static_cast<int64_t>(r % 101);
      doubles[r] = static_cast<double>(r % 101);
      codes[r] = static_cast<int32_t>(r % 101);
    }
    for (int64_t v = 0; v < 101; ++v) data.distinct.push_back(Value(v));
    data.rows = kRows;
    data.nulls = nulls.data();
    data.tags = tags.data();
    data.longs = longs.data();
    data.doubles = doubles.data();
    data.codes = codes.data();
    auto col = Column::FromSnapshot("v", ValueType::kLong, std::move(data));

    // Phase 1: concurrent readers before any mutation. The flat view is
    // zero-copy — it aliases the snapshot arrays.
    std::vector<std::thread> threads;
    std::vector<uint64_t> sums(8, 0);
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&col, &sums, t] {
        uint64_t sum = 0;
        if (t % 2 == 0) {
          const Column::FlatView& flat = col->Flat();
          for (size_t i = 0; i < flat.size; ++i) {
            sum += static_cast<uint64_t>(flat.longs[i]);
          }
        } else {
          // First values() call materializes the boxed cells lazily.
          for (const Value& v : col->values()) {
            sum += static_cast<uint64_t>(v.AsLong());
          }
        }
        sums[static_cast<size_t>(t)] = sum;
      });
    }
    for (auto& thread : threads) thread.join();
    for (int t = 1; t < 8; ++t) EXPECT_EQ(sums[static_cast<size_t>(t)], sums[0]);
    EXPECT_EQ(col->Flat().longs, longs.data()) << "flat view must be zero-copy";

    // Phase 2: single-writer append (the class contract excludes concurrent
    // readers during mutation). The column detaches from the image and every
    // derived representation rebuilds over owned storage.
    col->Append(Value(static_cast<int64_t>(7)));
    ASSERT_EQ(col->size(), kRows + 1);
    const Column::FlatView& flat = col->Flat();
    EXPECT_NE(flat.longs, longs.data()) << "Append must detach from the image";
    ASSERT_EQ(flat.size, kRows + 1);
    EXPECT_EQ(flat.longs[kRows], 7);
    EXPECT_EQ(flat.nulls[kRows], 0);
    EXPECT_EQ(col->DistinctValues().size(), 101u);
    EXPECT_EQ(col->Codes()[kRows], 7);

    // Phase 3: concurrent readers of the detached column are safe again.
    std::vector<std::thread> post;
    std::vector<size_t> sizes(4, 0);
    for (int t = 0; t < 4; ++t) {
      post.emplace_back([&col, &sizes, t] {
        sizes[static_cast<size_t>(t)] = col->Flat().size;
      });
    }
    for (auto& thread : post) thread.join();
    for (size_t s : sizes) EXPECT_EQ(s, kRows + 1);
  }
}

}  // namespace
}  // namespace db
}  // namespace aggchecker
