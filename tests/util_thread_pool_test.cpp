// ThreadPool: task completion, Status/exception propagation, reuse across
// submissions, and the zero/one-worker edge cases that must reduce to the
// inline serial path.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace aggchecker {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(0, kN, [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPoolTest, RespectsNonZeroBegin) {
  ThreadPool pool(4);
  std::set<size_t> seen;
  std::mutex mu;
  pool.ParallelFor(10, 25, [&](size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(i);
  });
  EXPECT_EQ(seen.size(), 15u);
  EXPECT_EQ(*seen.begin(), 10u);
  EXPECT_EQ(*seen.rbegin(), 24u);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(5, 5, [&](size_t) { ran = true; });
  pool.ParallelFor(7, 3, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  size_t expected = std::thread::hardware_concurrency();
  if (expected == 0) expected = 1;
  EXPECT_EQ(pool.num_threads(), expected);
  std::atomic<size_t> count{0};
  pool.ParallelFor(0, 100, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInOrder) {
  // num_threads == 1 must behave exactly like a serial for loop — indices
  // in ascending order on the calling thread.
  ThreadPool pool(1);
  std::vector<size_t> order;
  const std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(0, 50, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<size_t> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ReusableAcrossManySubmissions) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(0, 100, [&](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 5050u) << "round " << round;
  }
}

TEST(ThreadPoolTest, PropagatesLowestIndexException) {
  ThreadPool pool(4);
  // Multiple failing indices: the caller must observe the exception of the
  // lowest one regardless of scheduling.
  for (int round = 0; round < 10; ++round) {
    try {
      pool.ParallelFor(0, 200, [&](size_t i) {
        if (i == 17 || i == 100 || i == 180) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 17");
    }
  }
  // The pool stays usable after an exception.
  std::atomic<size_t> count{0};
  pool.ParallelFor(0, 10, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10u);
}

TEST(ThreadPoolTest, SingleThreadPropagatesExceptionsToo) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.ParallelFor(0, 5, [](size_t i) {
        if (i == 3) throw std::logic_error("serial boom");
      }),
      std::logic_error);
}

TEST(ThreadPoolTest, ParallelForStatusReturnsLowestFailure) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool pool(threads);
    Status status = pool.ParallelForStatus(0, 100, [](size_t i) {
      if (i == 23) return Status::Internal("fail 23");
      if (i == 71) return Status::InvalidArgument("fail 71");
      return Status::OK();
    });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_NE(status.message().find("fail 23"), std::string::npos);

    EXPECT_TRUE(
        pool.ParallelForStatus(0, 100, [](size_t) { return Status::OK(); })
            .ok());
  }
}

TEST(ThreadPoolTest, AllIterationsRunDespiteFailures) {
  // Failure does not cancel the remaining range (cancellation is the
  // governor's job): every index still executes.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  Status status = pool.ParallelForStatus(0, 64, [&](size_t i) {
    hits[i].fetch_add(1);
    return i % 2 == 0 ? Status::Internal("even") : Status::OK();
  });
  EXPECT_FALSE(status.ok());
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, UsesWorkersForLargeRanges) {
  // With enough work per iteration, at least one iteration should land off
  // the calling thread (smoke check that workers actually participate).
  ThreadPool pool(4);
  if (pool.num_threads() < 2) GTEST_SKIP() << "no workers spawned";
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.ParallelFor(0, 64, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 2u);
}

}  // namespace
}  // namespace aggchecker
