#include "db/eval_engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "db/query_interner.h"
#include "db/relation_cache.h"
#include "test_fixtures.h"
#include "util/resource_governor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aggchecker {
namespace db {
namespace {

/// Hexfloat fingerprint of a batch result: bit-identical or nothing.
std::string ResultFingerprint(
    const std::vector<std::optional<double>>& results) {
  std::string fp;
  char buf[64];
  for (const auto& r : results) {
    if (r.has_value()) {
      std::snprintf(buf, sizeof(buf), "%a;", *r);
      fp += buf;
    } else {
      fp += "nullopt;";
    }
  }
  return fp;
}

/// Randomized two-table PK-FK database (same family as the relation-cache
/// differential test): customers(id, region) and orders(id, customer_id,
/// amount, status), with some dangling FKs.
Database MakeRandomShopDatabase(uint64_t seed) {
  Rng rng(seed);
  Database database("shop");
  const char* kRegions[] = {"east", "west", "north"};
  const char* kStatus[] = {"open", "paid", "void"};
  const int num_customers = static_cast<int>(rng.NextInt(3, 12));
  {
    Table customers("customers");
    (void)customers.AddColumn("id", ValueType::kLong);
    (void)customers.AddColumn("region", ValueType::kString);
    for (int i = 0; i < num_customers; ++i) {
      (void)customers.AddRow(
          {Value(static_cast<int64_t>(i)),
           Value(std::string(kRegions[rng.NextBounded(3)]))});
    }
    (void)database.AddTable(std::move(customers));
  }
  {
    Table orders("orders");
    (void)orders.AddColumn("id", ValueType::kLong);
    (void)orders.AddColumn("customer_id", ValueType::kLong);
    (void)orders.AddColumn("amount", ValueType::kDouble);
    (void)orders.AddColumn("status", ValueType::kString);
    const int num_orders = static_cast<int>(rng.NextInt(20, 80));
    for (int i = 0; i < num_orders; ++i) {
      int64_t cust = rng.NextBounded(10) == 0
                         ? static_cast<int64_t>(num_customers + 100)
                         : static_cast<int64_t>(
                               rng.NextBounded(
                                   static_cast<uint64_t>(num_customers)));
      (void)orders.AddRow(
          {Value(static_cast<int64_t>(i)), Value(cust),
           Value(rng.NextDouble() * 100.0 - 20.0),
           Value(std::string(kStatus[rng.NextBounded(3)]))});
    }
    (void)database.AddTable(std::move(orders));
  }
  (void)database.AddForeignKey({"orders", "customer_id"},
                               {"customers", "id"});
  return database;
}

/// A batch that exercises every merge-relevant shape: single- and two-table
/// relations, several dimension sets (including shared ones so the result
/// cache and rollup paths fire), every aggregate function, an invalid
/// query, and an unsatisfiable conjunction.
std::vector<SimpleAggregateQuery> MakeMixedBatch() {
  std::vector<SimpleAggregateQuery> batch;
  for (const char* region : {"east", "west", "north", "nowhere"}) {
    SimpleAggregateQuery q;
    q.fn = AggFn::kCount;
    q.agg_column = {"orders", ""};
    q.predicates.push_back(
        {{"customers", "region"}, Value(std::string(region))});
    batch.push_back(q);
    q.fn = AggFn::kSum;
    q.agg_column = {"orders", "amount"};
    batch.push_back(q);
    q.fn = AggFn::kAvg;
    batch.push_back(q);
    q.fn = AggFn::kMin;
    batch.push_back(q);
    q.fn = AggFn::kMax;
    batch.push_back(q);
    q.fn = AggFn::kCountDistinct;
    q.agg_column = {"orders", "status"};
    batch.push_back(q);
    // Adds orders.status as a second dimension.
    q.fn = AggFn::kCount;
    q.agg_column = {"orders", ""};
    q.predicates.push_back(
        {{"orders", "status"}, Value(std::string("paid"))});
    batch.push_back(q);
  }
  for (const char* status : {"open", "paid", "void"}) {
    SimpleAggregateQuery q;
    q.fn = AggFn::kCount;
    q.agg_column = {"orders", ""};
    q.predicates.push_back(
        {{"orders", "status"}, Value(std::string(status))});
    batch.push_back(q);
    q.fn = AggFn::kConditionalProbability;
    q.predicates.push_back(
        {{"customers", "region"}, Value(std::string("east"))});
    batch.push_back(q);
  }
  {
    // Invalid: unknown column -> nullopt on every path.
    SimpleAggregateQuery q;
    q.fn = AggFn::kSum;
    q.agg_column = {"orders", "ghost"};
    batch.push_back(q);
  }
  {
    // Unsatisfiable conjunction: same column, two values.
    SimpleAggregateQuery q;
    q.fn = AggFn::kSum;
    q.agg_column = {"orders", "amount"};
    q.predicates.push_back(
        {{"orders", "status"}, Value(std::string("open"))});
    q.predicates.push_back(
        {{"orders", "status"}, Value(std::string("paid"))});
    batch.push_back(q);
  }
  {
    // Duplicate of an earlier query: the result cache must serve it.
    SimpleAggregateQuery q;
    q.fn = AggFn::kCount;
    q.agg_column = {"orders", ""};
    q.predicates.push_back(
        {{"orders", "status"}, Value(std::string("paid"))});
    batch.push_back(q);
  }
  return batch;
}

/// Property: the fingerprint path is bit-identical to the string-keyed
/// reference path for every strategy and thread count, across randomized
/// schemas — the plan cache is an equivalence, not an approximation.
class PlanCacheDiffTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanCacheDiffTest, FingerprintOnOffBitIdenticalAcrossStrategies) {
  auto database = MakeRandomShopDatabase(GetParam());
  const auto batch = MakeMixedBatch();

  std::string reference;
  bool have_reference = false;
  for (EvalStrategy strategy : {EvalStrategy::kNaive, EvalStrategy::kMerged,
                                EvalStrategy::kMergedCached}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      for (bool fingerprints : {false, true}) {
        database.relation_cache().Clear();
        EvalEngine engine(&database, strategy);
        engine.SetQueryFingerprints(fingerprints);
        ThreadPool pool(threads);
        if (threads > 1) engine.SetThreadPool(&pool);
        std::string fp = ResultFingerprint(engine.EvaluateBatch(batch));
        if (!have_reference) {
          reference = fp;
          have_reference = true;
        } else {
          EXPECT_EQ(fp, reference)
              << EvalStrategyName(strategy) << " threads=" << threads
              << " fingerprints=" << (fingerprints ? "on" : "off");
        }
        // The string path never touches the plan cache; the fingerprint
        // path builds each (relation, dim-set) plan at most once.
        if (!fingerprints || strategy == EvalStrategy::kNaive) {
          EXPECT_EQ(engine.stats().plans_built, 0u);
          EXPECT_EQ(engine.stats().plan_cache_hits, 0u);
        } else {
          EXPECT_GT(engine.stats().plans_built, 0u);
        }
      }
    }
  }
}

TEST_P(PlanCacheDiffTest, GovernorChargeTotalsMatchAcrossModes) {
  auto database = MakeRandomShopDatabase(GetParam());
  const auto batch = MakeMixedBatch();

  for (EvalStrategy strategy : {EvalStrategy::kNaive, EvalStrategy::kMerged,
                                EvalStrategy::kMergedCached}) {
    GovernorUsage usage[2];
    std::string results[2];
    for (int fingerprints = 0; fingerprints < 2; ++fingerprints) {
      database.relation_cache().Clear();
      EvalEngine engine(&database, strategy);
      engine.SetQueryFingerprints(fingerprints == 1);
      ResourceGovernor governor;  // unlimited: counts, never trips
      engine.SetGovernor(&governor);
      results[fingerprints] = ResultFingerprint(engine.EvaluateBatch(batch));
      usage[fingerprints] = governor.usage();
    }
    // Same scans, same joins, same cube shells — charge-identical, not
    // just result-identical.
    EXPECT_EQ(results[0], results[1]) << EvalStrategyName(strategy);
    EXPECT_EQ(usage[0].rows_charged, usage[1].rows_charged)
        << EvalStrategyName(strategy);
    EXPECT_EQ(usage[0].cube_groups_charged, usage[1].cube_groups_charged)
        << EvalStrategyName(strategy);
    EXPECT_EQ(usage[0].memory_bytes_charged, usage[1].memory_bytes_charged)
        << EvalStrategyName(strategy);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanCacheDiffTest,
                         ::testing::Range(uint64_t{9100}, uint64_t{9108}));

/// The point of the plan cache: a re-evaluated batch (the EM loop's steady
/// state) builds zero new plans — every group is a plan-cache hit — and
/// stays bit-identical.
TEST(PlanCacheReuseTest, SecondBatchBuildsNoNewPlans) {
  auto database = MakeRandomShopDatabase(4242);
  const auto batch = MakeMixedBatch();
  EvalEngine engine(&database, EvalStrategy::kMergedCached);
  const std::string first = ResultFingerprint(engine.EvaluateBatch(batch));
  const size_t plans_after_first = engine.stats().plans_built;
  const size_t hits_after_first = engine.stats().plan_cache_hits;
  ASSERT_GT(plans_after_first, 0u);

  const std::string second = ResultFingerprint(engine.EvaluateBatch(batch));
  EXPECT_EQ(second, first);
  EXPECT_EQ(engine.stats().plans_built, plans_after_first);
  EXPECT_GT(engine.stats().plan_cache_hits, hits_after_first);

  // ClearCache drops results, never plans: the third run re-executes cubes
  // but still plans nothing new.
  engine.ClearCache();
  const std::string third = ResultFingerprint(engine.EvaluateBatch(batch));
  EXPECT_EQ(third, first);
  EXPECT_EQ(engine.stats().plans_built, plans_after_first);
}

/// EvaluateInterned (the translator's id-shipping path) is the same
/// computation as EvaluateBatch over the materialized queries.
TEST(PlanCacheReuseTest, EvaluateInternedMatchesEvaluateBatch) {
  auto database = MakeRandomShopDatabase(4243);
  const auto batch = MakeMixedBatch();

  EvalEngine by_query(&database, EvalStrategy::kMergedCached);
  const std::string expected =
      ResultFingerprint(by_query.EvaluateBatch(batch));

  database.relation_cache().Clear();
  EvalEngine by_id(&database, EvalStrategy::kMergedCached);
  std::vector<QueryInterner::Id> ids;
  ids.reserve(batch.size());
  for (const auto& q : batch) {
    ids.push_back(by_id.interner().InternQuery(q));
  }
  EXPECT_EQ(ResultFingerprint(by_id.EvaluateInterned(ids)), expected);
}

}  // namespace
}  // namespace db
}  // namespace aggchecker
