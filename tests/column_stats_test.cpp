// ColumnStats (DESIGN.md §17): the lazily built per-column summary the
// verification-aware probes run on. Pins the aggregate semantics (finite
// cells only, NaN/inf flagged not folded), the invalidation contract
// (Append/Update discard stats exactly like the dictionary and flat view),
// the SeedStats snapshot hook, and the thread-safety of concurrent first
// builds (run under TSan via the `concurrency` label).

#include "db/column_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "db/column.h"

namespace aggchecker {
namespace db {
namespace {

TEST(ColumnStatsTest, LongColumnAggregates) {
  Column col("v", ValueType::kLong);
  col.Append(Value(int64_t{4}));
  col.Append(Value());  // NULL
  col.Append(Value(int64_t{-3}));
  col.Append(Value(int64_t{4}));
  col.Append(Value(int64_t{10}));

  const ColumnStats& s = col.Stats();
  EXPECT_EQ(s.rows, 5u);
  EXPECT_EQ(s.non_null, 4u);
  EXPECT_EQ(s.distinct, 3u);  // {4, -3, 10}
  EXPECT_TRUE(s.numeric);
  EXPECT_EQ(s.finite_count, 4u);
  EXPECT_FALSE(s.has_non_finite);
  EXPECT_TRUE(s.integral);
  EXPECT_DOUBLE_EQ(s.min, -3.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.sum_pos, 18.0);
  EXPECT_DOUBLE_EQ(s.sum_neg, -3.0);
  EXPECT_DOUBLE_EQ(s.max_abs, 10.0);
}

TEST(ColumnStatsTest, NonFiniteCellsFlaggedNotFolded) {
  Column col("v", ValueType::kDouble);
  col.Append(Value(2.5));
  col.Append(Value(std::nan("")));
  col.Append(Value(std::numeric_limits<double>::infinity()));
  col.Append(Value(-1.5));

  const ColumnStats& s = col.Stats();
  EXPECT_EQ(s.non_null, 4u);
  EXPECT_EQ(s.finite_count, 2u);
  EXPECT_TRUE(s.has_non_finite);
  EXPECT_FALSE(s.integral);  // 2.5 is not an integer
  // NaN/inf must not leak into the bounds: probes reason about the finite
  // cells, and any subset touching a non-finite cell evaluates "undefined".
  EXPECT_DOUBLE_EQ(s.min, -1.5);
  EXPECT_DOUBLE_EQ(s.max, 2.5);
  EXPECT_DOUBLE_EQ(s.sum_pos, 2.5);
  EXPECT_DOUBLE_EQ(s.sum_neg, -1.5);
  EXPECT_DOUBLE_EQ(s.max_abs, 2.5);
}

TEST(ColumnStatsTest, AllNullNumericColumnHasEmptyInterval) {
  Column col("v", ValueType::kDouble);
  col.Append(Value());
  col.Append(Value());

  const ColumnStats& s = col.Stats();
  EXPECT_EQ(s.rows, 2u);
  EXPECT_EQ(s.non_null, 0u);
  EXPECT_EQ(s.finite_count, 0u);
  // min > max: the empty interval — "no finite result attainable".
  EXPECT_GT(s.min, s.max);
}

TEST(ColumnStatsTest, StringColumnIsNotNumeric) {
  Column col("v", ValueType::kString);
  col.Append(Value(std::string("a")));
  col.Append(Value(std::string("b")));
  col.Append(Value(std::string("a")));

  const ColumnStats& s = col.Stats();
  EXPECT_FALSE(s.numeric);
  EXPECT_EQ(s.distinct, 2u);
  EXPECT_EQ(s.finite_count, 0u);
}

// The stale-stats regression at the heart of the invalidation contract: a
// probe bound computed before ingestion must not survive it. Append must
// discard cached stats exactly like the dictionary.
TEST(ColumnStatsTest, AppendInvalidatesStats) {
  Column col("v", ValueType::kLong);
  col.Append(Value(int64_t{5}));
  const ColumnStats& before = col.Stats();
  EXPECT_DOUBLE_EQ(before.max, 5.0);
  EXPECT_EQ(before.distinct, 1u);

  col.Append(Value(int64_t{100}));
  const ColumnStats& after = col.Stats();
  EXPECT_DOUBLE_EQ(after.max, 100.0);
  EXPECT_EQ(after.distinct, 2u);
  EXPECT_EQ(after.rows, 2u);
  EXPECT_DOUBLE_EQ(after.sum_pos, 105.0);
}

TEST(ColumnStatsTest, UpdateInvalidatesStats) {
  Column col("v", ValueType::kLong);
  col.Append(Value(int64_t{5}));
  col.Append(Value(int64_t{7}));
  EXPECT_DOUBLE_EQ(col.Stats().max, 7.0);

  col.Update(1, Value(int64_t{-2}));
  const ColumnStats& s = col.Stats();
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.min, -2.0);
  EXPECT_DOUBLE_EQ(s.sum_neg, -2.0);
}

// SeedStats adopts precomputed stats (the snapshot load path) and a later
// mutation still discards them — seeded stats are a cache, never a pin.
TEST(ColumnStatsTest, SeedStatsAdoptsAndStaysInvalidatable) {
  Column source("v", ValueType::kLong);
  source.Append(Value(int64_t{1}));
  source.Append(Value(int64_t{9}));
  const ColumnStats computed = source.Stats();

  Column loaded("v", ValueType::kLong);
  loaded.Append(Value(int64_t{1}));
  loaded.Append(Value(int64_t{9}));
  loaded.SeedStats(computed);
  const ColumnStats& seeded = loaded.Stats();
  EXPECT_DOUBLE_EQ(seeded.min, computed.min);
  EXPECT_DOUBLE_EQ(seeded.max, computed.max);
  EXPECT_EQ(seeded.distinct, computed.distinct);

  loaded.Append(Value(int64_t{50}));
  EXPECT_DOUBLE_EQ(loaded.Stats().max, 50.0);
}

// First Stats() build from many threads at once: one build wins, all
// readers see the same object (TSan-guarded via the concurrency label).
TEST(ColumnStatsTest, ConcurrentFirstBuildIsSafe) {
  Column col("v", ValueType::kLong);
  for (int i = 0; i < 1000; ++i) {
    col.Append(i % 11 == 0 ? Value() : Value(static_cast<int64_t>(i % 37)));
  }
  std::vector<std::thread> threads;
  std::vector<double> maxima(8, 0.0);
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&col, &maxima, t] {
      maxima[t] = col.Stats().max;
    });
  }
  for (auto& th : threads) th.join();
  for (double m : maxima) EXPECT_DOUBLE_EQ(m, 36.0);
}

}  // namespace
}  // namespace db
}  // namespace aggchecker
