#include "fragments/catalog.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace aggchecker {
namespace fragments {
namespace {

using testing_fixtures::MakeNflDatabase;
using testing_fixtures::MakeOrdersDatabase;

TEST(FragmentTest, DescribeAndKey) {
  QueryFragment fn;
  fn.type = FragmentType::kAggFunction;
  fn.fn = db::AggFn::kAvg;
  EXPECT_EQ(fn.Describe(), "Average");
  EXPECT_EQ(fn.Key(), "f:Average");

  QueryFragment col;
  col.type = FragmentType::kAggColumn;
  col.column = {"t", "salary"};
  EXPECT_EQ(col.Describe(), "t.salary");

  QueryFragment star;
  star.type = FragmentType::kAggColumn;
  star.column = {"t", ""};
  EXPECT_TRUE(star.is_star_column());
  EXPECT_EQ(star.Describe(), "t.*");

  QueryFragment pred;
  pred.type = FragmentType::kPredicate;
  pred.column = {"t", "Games"};
  pred.value = db::Value(std::string("indef"));
  EXPECT_EQ(pred.Describe(), "Games = 'indef'");
}

TEST(CatalogTest, BuildsAllFragmentTypes) {
  auto database = MakeNflDatabase();
  auto catalog = FragmentCatalog::Build(database);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  // All 8 aggregation functions.
  EXPECT_EQ(catalog->fragments(FragmentType::kAggFunction).size(), 8u);
  // One "*" plus 4 named columns.
  EXPECT_EQ(catalog->fragments(FragmentType::kAggColumn).size(), 5u);
  // Predicates: one per (column, distinct value): Name 10 + Team 10 +
  // Games 6 + Category 4 = 30.
  EXPECT_EQ(catalog->fragments(FragmentType::kPredicate).size(), 30u);
  EXPECT_EQ(catalog->predicate_columns().size(), 4u);
}

TEST(CatalogTest, EmptyDatabaseRejected) {
  db::Database empty;
  EXPECT_FALSE(FragmentCatalog::Build(empty).ok());
}

TEST(CatalogTest, RetrievePredicateByValueKeyword) {
  auto database = MakeNflDatabase();
  auto catalog = FragmentCatalog::Build(database);
  ASSERT_TRUE(catalog.ok());
  auto hits = catalog->Retrieve(FragmentType::kPredicate,
                                {{"gambling", 1.0}}, 5);
  ASSERT_FALSE(hits.empty());
  const auto& top = catalog->fragment(FragmentType::kPredicate,
                                      hits[0].fragment_index);
  EXPECT_EQ(top.value.ToString(), "gambling");
  EXPECT_EQ(top.column.column, "Category");
}

TEST(CatalogTest, RetrieveColumnBySplitName) {
  auto database = MakeOrdersDatabase();
  auto catalog = FragmentCatalog::Build(database);
  ASSERT_TRUE(catalog.ok());
  // "customer" must reach the customer_id column via word splitting.
  auto hits = catalog->Retrieve(FragmentType::kAggColumn,
                                {{"customer", 1.0}}, 10);
  bool found = false;
  for (const auto& h : hits) {
    if (catalog->fragment(FragmentType::kAggColumn, h.fragment_index)
            .column.column == "customer_id") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CatalogTest, RetrieveFunctionByCueWord) {
  auto database = MakeNflDatabase();
  auto catalog = FragmentCatalog::Build(database);
  ASSERT_TRUE(catalog.ok());
  auto hits = catalog->Retrieve(FragmentType::kAggFunction,
                                {{"average", 1.0}}, 3);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(catalog->fragment(FragmentType::kAggFunction,
                              hits[0].fragment_index)
                .fn,
            db::AggFn::kAvg);
}

TEST(CatalogTest, PredicateAndAggColumnIndexLookup) {
  auto database = MakeNflDatabase();
  auto catalog = FragmentCatalog::Build(database);
  ASSERT_TRUE(catalog.ok());
  EXPECT_GE(catalog->PredicateColumnIndex({"nflsuspensions", "Games"}), 0);
  EXPECT_EQ(catalog->PredicateColumnIndex({"nflsuspensions", "nope"}), -1);
  EXPECT_GE(catalog->AggColumnIndex({"nflsuspensions", ""}), 0);  // star
  EXPECT_GE(catalog->AggColumnIndex({"nflsuspensions", "Games"}), 0);
  EXPECT_EQ(catalog->AggColumnIndex({"zzz", "Games"}), -1);
}

TEST(CatalogTest, LiteralCapRespected) {
  auto database = MakeNflDatabase();
  CatalogOptions options;
  options.max_literals_per_column = 2;
  auto catalog = FragmentCatalog::Build(database, options);
  ASSERT_TRUE(catalog.ok());
  // 4 columns x 2 literals each = 8.
  EXPECT_EQ(catalog->fragments(FragmentType::kPredicate).size(), 8u);
}

TEST(CatalogTest, DataDictionaryKeywordsIndexed) {
  auto database = MakeOrdersDatabase();
  DataDictionary dict;
  dict.Add({"orders", "amount"}, "total purchase price in dollars");
  CatalogOptions options;
  options.dictionary = &dict;
  auto catalog = FragmentCatalog::Build(database, options);
  ASSERT_TRUE(catalog.ok());
  auto hits = catalog->Retrieve(FragmentType::kAggColumn,
                                {{"price", 1.0}}, 10);
  bool found = false;
  for (const auto& h : hits) {
    if (catalog->fragment(FragmentType::kAggColumn, h.fragment_index)
            .column.column == "amount") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CatalogTest, CountPossibleQueriesGrowsWithData) {
  auto nfl = MakeNflDatabase();
  double count = FragmentCatalog::CountPossibleQueries(nfl);
  // Predicate combinations: (1+10)(1+10)(1+6)(1+4) = 4235; select choices:
  // 1 star + per-column compatible fns.
  EXPECT_GT(count, 4235.0);
  auto shop = MakeOrdersDatabase();
  EXPECT_GT(FragmentCatalog::CountPossibleQueries(shop), 0.0);
}

TEST(DataDictionaryTest, ParseAndLookup) {
  auto dict = DataDictionary::Parse(
      "table,column,description\n"
      "nflsuspensions,Games,number of games suspended or indef\n"
      ",Category,reason for the suspension\n");
  ASSERT_TRUE(dict.ok()) << dict.status().ToString();
  EXPECT_EQ(dict->size(), 2u);
  EXPECT_EQ(dict->Lookup({"nflsuspensions", "Games"}),
            "number of games suspended or indef");
  // Table-agnostic entry matches any table; lookup is case-insensitive.
  EXPECT_EQ(dict->Lookup({"whatever", "CATEGORY"}),
            "reason for the suspension");
  EXPECT_EQ(dict->Lookup({"nflsuspensions", "nope"}), "");
}

TEST(DataDictionaryTest, ParseErrors) {
  EXPECT_FALSE(DataDictionary::Parse("only,two\na,b\n").ok());
  EXPECT_FALSE(DataDictionary::Parse("t,c,d\nx,,desc\n").ok());
}

}  // namespace
}  // namespace fragments
}  // namespace aggchecker
