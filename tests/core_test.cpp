#include "core/aggchecker.h"

#include <gtest/gtest.h>

#include "core/markup.h"
#include "core/query_describer.h"
#include "test_fixtures.h"
#include "text/document.h"

namespace aggchecker {
namespace core {
namespace {

using testing_fixtures::MakeNflDatabase;

// Article with one deliberately wrong claim: the paper's Table 9 reports
// the article said "three" repeated-substance-abuse bans while the updated
// data contains four... here we flip it: data says 3, text says "two".
constexpr const char* kArticleWithError = R"(
<h1>The NFL's Uneven History Of Punishing Domestic Violence</h1>
<h2>Lifetime bans</h2>
<p>There were only four previous lifetime bans in my database. Two were
for repeated substance abuse offenses, one was for gambling.</p>
)";

constexpr const char* kCorrectArticle = R"(
<h1>The NFL's Uneven History Of Punishing Domestic Violence</h1>
<h2>Lifetime bans</h2>
<p>There were only four previous lifetime bans in my database. Three were
for repeated substance abuse offenses, one was for gambling.</p>
)";

TEST(AggCheckerTest, CreateRequiresDatabase) {
  EXPECT_FALSE(AggChecker::Create(nullptr).ok());
  db::Database empty;
  EXPECT_FALSE(AggChecker::Create(&empty).ok());
}

TEST(AggCheckerTest, VerifiesCorrectArticle) {
  auto database = MakeNflDatabase();
  auto checker = AggChecker::Create(&database);
  ASSERT_TRUE(checker.ok());
  auto doc = text::ParseDocument(kCorrectArticle);
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->verdicts.size(), 3u);
  for (const auto& v : report->verdicts) {
    EXPECT_FALSE(v.likely_erroneous)
        << v.claim.id << " best: " << v.best()->query.ToSql();
    EXPECT_GT(v.correctness_probability, 0.5);
  }
  EXPECT_GT(report->queries_evaluated, 0u);
  EXPECT_GT(report->total_seconds, 0.0);
}

TEST(AggCheckerTest, FlagsErroneousClaim) {
  auto database = MakeNflDatabase();
  auto checker = AggChecker::Create(&database);
  ASSERT_TRUE(checker.ok());
  auto doc = text::ParseDocument(kArticleWithError);
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->verdicts.size(), 3u);
  // "four" and "one" verify; "two" must be flagged.
  EXPECT_FALSE(report->verdicts[0].likely_erroneous);
  EXPECT_TRUE(report->verdicts[1].likely_erroneous);
  EXPECT_FALSE(report->verdicts[2].likely_erroneous);
  EXPECT_EQ(report->NumFlagged(), 1u);
}

TEST(AggCheckerTest, StarvedBudgetDegradesToPartialVerdicts) {
  auto database = MakeNflDatabase();
  CheckOptions options;
  options.governor.max_row_scans = 1;  // trips on the first inspection
  auto checker = AggChecker::Create(&database, options);
  ASSERT_TRUE(checker.ok());
  auto doc = text::ParseDocument(kCorrectArticle);
  auto report = checker->Check(*doc);
  // Exhausting the budget is NOT an error: the run completes with
  // best-effort verdicts.
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdicts.size(), 3u);
  EXPECT_GT(report->NumPartial(), 0u);
  for (const auto& v : report->verdicts) {
    if (v.partial) {
      EXPECT_FALSE(v.likely_erroneous) << v.claim.id;
    }
  }
  EXPECT_TRUE(report->governor_usage.exhausted);
  EXPECT_EQ(report->governor_usage.stop_code, StatusCode::kBudgetExhausted);
}

TEST(AggCheckerTest, UnlimitedGovernorMatchesDefaultRun) {
  auto database = MakeNflDatabase();
  auto doc = text::ParseDocument(kCorrectArticle);

  auto baseline = AggChecker::Create(&database);
  ASSERT_TRUE(baseline.ok());
  auto baseline_report = baseline->Check(*doc);
  ASSERT_TRUE(baseline_report.ok());

  CheckOptions options;
  options.governor.max_row_scans = 0;  // explicit unlimited
  options.governor.deadline_seconds = 0;
  auto governed = AggChecker::Create(&database, options);
  ASSERT_TRUE(governed.ok());
  auto governed_report = governed->Check(*doc);
  ASSERT_TRUE(governed_report.ok());

  // An unlimited governor only counts; verdicts are bit-identical.
  ASSERT_EQ(governed_report->verdicts.size(),
            baseline_report->verdicts.size());
  for (size_t i = 0; i < baseline_report->verdicts.size(); ++i) {
    const auto& a = baseline_report->verdicts[i];
    const auto& b = governed_report->verdicts[i];
    EXPECT_EQ(a.likely_erroneous, b.likely_erroneous);
    EXPECT_FALSE(b.partial);
    EXPECT_DOUBLE_EQ(a.correctness_probability, b.correctness_probability);
  }
  EXPECT_EQ(governed_report->NumPartial(), 0u);
  EXPECT_FALSE(governed_report->governor_usage.exhausted);
  EXPECT_GT(governed_report->governor_usage.rows_charged, 0u);
}

TEST(AggCheckerTest, DeadlineStopIsReportedInUsage) {
  auto database = MakeNflDatabase();
  CheckOptions options;
  options.governor.deadline_seconds = 1e-9;  // already expired
  auto checker = AggChecker::Create(&database, options);
  ASSERT_TRUE(checker.ok());
  auto doc = text::ParseDocument(kCorrectArticle);
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->governor_usage.exhausted);
  EXPECT_EQ(report->governor_usage.stop_code, StatusCode::kDeadlineExceeded);
  EXPECT_GT(report->NumPartial(), 0u);
}

TEST(AggCheckerTest, TopQueriesCappedByOption) {
  auto database = MakeNflDatabase();
  CheckOptions options;
  options.report_top_k = 3;
  auto checker = AggChecker::Create(&database, options);
  ASSERT_TRUE(checker.ok());
  auto doc = text::ParseDocument(kCorrectArticle);
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  for (const auto& v : report->verdicts) {
    EXPECT_LE(v.top_queries.size(), 3u);
  }
}

TEST(AggCheckerTest, CachePersistsAcrossChecks) {
  auto database = MakeNflDatabase();
  auto checker = AggChecker::Create(&database);
  ASSERT_TRUE(checker.ok());
  auto doc = text::ParseDocument(kCorrectArticle);
  (void)checker->Check(*doc);
  size_t cubes_after_first = checker->engine().stats().cube_queries;
  (void)checker->Check(*doc);
  size_t cubes_after_second = checker->engine().stats().cube_queries;
  // Re-checking the same document is (almost) free on the query side.
  EXPECT_EQ(cubes_after_first, cubes_after_second);
}

TEST(AggCheckerTest, NoClaimsNoVerdicts) {
  auto database = MakeNflDatabase();
  auto checker = AggChecker::Create(&database);
  auto doc = text::ParseDocument("Nothing numeric is stated here at all.");
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->verdicts.empty());
  EXPECT_EQ(report->NumFlagged(), 0u);
}

TEST(QueryDescriberTest, CountStarWithPredicates) {
  auto q = testing_fixtures::CountStar(
      "nflsuspensions",
      {{{"nflsuspensions", "Games"}, db::Value(std::string("indef"))}});
  EXPECT_EQ(DescribeQuery(q),
            "the number of rows in nflsuspensions where Games is 'indef'");
}

TEST(QueryDescriberTest, AverageColumn) {
  db::SimpleAggregateQuery q;
  q.fn = db::AggFn::kAvg;
  q.agg_column = {"orders", "amount"};
  EXPECT_EQ(DescribeQuery(q), "the average of 'amount' in orders");
}

TEST(QueryDescriberTest, ConditionalProbabilityPhrasing) {
  db::SimpleAggregateQuery q;
  q.fn = db::AggFn::kConditionalProbability;
  q.agg_column = {"nflsuspensions", ""};
  q.predicates = {
      {{"nflsuspensions", "Games"}, db::Value(std::string("indef"))},
      {{"nflsuspensions", "Category"}, db::Value(std::string("gambling"))}};
  std::string desc = DescribeQuery(q);
  EXPECT_NE(desc.find("given that Games is 'indef'"), std::string::npos);
  EXPECT_NE(desc.find("Category is 'gambling'"), std::string::npos);
}

TEST(MarkupTest, FlaggedClaimWrappedInRed) {
  auto database = MakeNflDatabase();
  auto checker = AggChecker::Create(&database);
  auto doc = text::ParseDocument(kArticleWithError);
  auto report = checker->Check(*doc);
  ASSERT_TRUE(report.ok());

  std::string plain = RenderMarkup(*doc, *report, MarkupStyle::kPlain);
  EXPECT_NE(plain.find("[OK four]"), std::string::npos);
  EXPECT_NE(plain.find("[?? Two]"), std::string::npos);
  EXPECT_NE(plain.find("best query:"), std::string::npos);

  std::string ansi = RenderMarkup(*doc, *report, MarkupStyle::kAnsi);
  EXPECT_NE(ansi.find("\x1b[31mTwo\x1b[0m"), std::string::npos);

  std::string html = RenderMarkup(*doc, *report, MarkupStyle::kHtml);
  EXPECT_NE(html.find("<span class=\"flagged\">Two</span>"),
            std::string::npos);
  EXPECT_NE(html.find("<span class=\"verified\">four</span>"),
            std::string::npos);
}

TEST(MarkupTest, HeadlinesRendered) {
  auto database = MakeNflDatabase();
  auto checker = AggChecker::Create(&database);
  auto doc = text::ParseDocument(kCorrectArticle);
  auto report = checker->Check(*doc);
  std::string out = RenderMarkup(*doc, *report, MarkupStyle::kPlain);
  EXPECT_NE(out.find("## Lifetime bans"), std::string::npos);
  EXPECT_NE(out.find("# The NFL's"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace aggchecker
