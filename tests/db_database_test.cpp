#include "db/database.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace aggchecker {
namespace db {
namespace {

TEST(DatabaseTest, AddAndFindTables) {
  auto database = testing_fixtures::MakeOrdersDatabase();
  EXPECT_EQ(database.num_tables(), 2u);
  EXPECT_NE(database.FindTable("orders"), nullptr);
  EXPECT_NE(database.FindTable("CUSTOMERS"), nullptr);
  EXPECT_EQ(database.FindTable("nope"), nullptr);
}

TEST(DatabaseTest, DuplicateTableRejected) {
  Database database;
  ASSERT_TRUE(database.AddTable(Table("t")).ok());
  EXPECT_FALSE(database.AddTable(Table("T")).ok());
}

TEST(DatabaseTest, FindColumnResolvesRefs) {
  auto database = testing_fixtures::MakeOrdersDatabase();
  EXPECT_NE(database.FindColumn({"orders", "amount"}), nullptr);
  EXPECT_EQ(database.FindColumn({"orders", "nope"}), nullptr);
  EXPECT_EQ(database.FindColumn({"nope", "amount"}), nullptr);
}

TEST(DatabaseTest, ForeignKeyValidation) {
  auto database = testing_fixtures::MakeOrdersDatabase();
  // Unknown columns rejected.
  EXPECT_FALSE(
      database.AddForeignKey({"orders", "nope"}, {"customers", "id"}).ok());
  EXPECT_FALSE(
      database.AddForeignKey({"orders", "id"}, {"nope", "id"}).ok());
}

TEST(DatabaseTest, CyclicForeignKeyRejected) {
  auto database = testing_fixtures::MakeOrdersDatabase();
  // orders—customers already linked; closing the cycle must fail (§6.3
  // requires an acyclic schema).
  EXPECT_FALSE(
      database.AddForeignKey({"customers", "id"}, {"orders", "id"}).ok());
  // Self-edges likewise.
  EXPECT_FALSE(
      database.AddForeignKey({"orders", "id"}, {"orders", "customer_id"})
          .ok());
}

TEST(DatabaseTest, JoinPlanSingleTableIsEmpty) {
  auto database = testing_fixtures::MakeOrdersDatabase();
  auto plan = database.JoinPlan({"orders"});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->steps.empty());
  EXPECT_EQ(plan->root, "orders");
}

TEST(DatabaseTest, JoinPlanTwoTables) {
  auto database = testing_fixtures::MakeOrdersDatabase();
  auto plan = database.JoinPlan({"orders", "customers"});
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 1u);
}

TEST(DatabaseTest, JoinPlanUnknownTable) {
  auto database = testing_fixtures::MakeOrdersDatabase();
  EXPECT_FALSE(database.JoinPlan({"orders", "nope"}).ok());
}

TEST(DatabaseTest, JoinPlanDisconnectedTables) {
  auto database = testing_fixtures::MakeOrdersDatabase();
  Table island("island");
  ASSERT_TRUE(island.AddColumn("x", ValueType::kLong).ok());
  ASSERT_TRUE(database.AddTable(std::move(island)).ok());
  EXPECT_FALSE(database.JoinPlan({"orders", "island"}).ok());
  // But the island alone is fine.
  EXPECT_TRUE(database.JoinPlan({"island"}).ok());
}

TEST(DatabaseTest, JoinPlanThreeTableChainViaIntermediate) {
  // items -> orders -> customers; requesting {items, customers} must pull in
  // orders as the connecting table.
  auto database = testing_fixtures::MakeOrdersDatabase();
  Table items("items");
  ASSERT_TRUE(items.AddColumn("order_id", ValueType::kLong).ok());
  ASSERT_TRUE(items.AddColumn("sku", ValueType::kString).ok());
  ASSERT_TRUE(
      items.AddRow({Value(int64_t{10}), Value(std::string("apple"))}).ok());
  ASSERT_TRUE(database.AddTable(std::move(items)).ok());
  ASSERT_TRUE(
      database.AddForeignKey({"items", "order_id"}, {"orders", "id"}).ok());

  auto plan = database.JoinPlan({"items", "customers"});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps.size(), 2u);  // both edges of the path
}

TEST(DatabaseTest, TotalRows) {
  auto database = testing_fixtures::MakeOrdersDatabase();
  EXPECT_EQ(database.TotalRows(), 3u + 5u);
}

// Version plumbing (DESIGN.md §16): TableVersion is case-insensitive and
// returns the sentinel 0 for unknown tables (real versions start at 1, so
// "unknown" always compares unequal); ingestion through the database bumps
// exactly the touched table.
TEST(DatabaseVersionTest, TableVersionAndIngestionRouting) {
  auto database = testing_fixtures::MakeOrdersDatabase();
  EXPECT_EQ(database.TableVersion("orders"), 1u);
  EXPECT_EQ(database.TableVersion("ORDERS"), 1u);
  EXPECT_EQ(database.TableVersion("nope"), 0u);

  const db::Table* orders = database.FindTable("orders");
  ASSERT_NE(orders, nullptr);
  std::vector<Value> row;
  for (size_t c = 0; c < orders->num_columns(); ++c) {
    row.push_back(orders->column(c).at(0));
  }
  ASSERT_TRUE(database.AppendRows("Orders", {row}).ok());
  EXPECT_EQ(database.TableVersion("orders"), 2u);
  EXPECT_EQ(database.TableVersion("customers"), 1u)
      << "ingestion must bump only the touched table";
  EXPECT_FALSE(database.AppendRows("nope", {row}).ok());

  const db::Table* customers = database.FindTable("customers");
  ASSERT_NE(customers, nullptr);
  ASSERT_TRUE(database
                  .UpdateCell("customers", 0, customers->column(0).name(),
                              customers->column(0).at(1))
                  .ok());
  EXPECT_EQ(database.TableVersion("customers"), 2u);
}

// The version vector is the cache-key domain: sorted lower-cased names,
// one entry per table, tracking each table's current version.
TEST(DatabaseVersionTest, VersionVectorSortedAndCurrent) {
  auto database = testing_fixtures::MakeOrdersDatabase();
  auto vec = database.VersionVector();
  ASSERT_EQ(vec.size(), database.num_tables());
  for (size_t i = 1; i < vec.size(); ++i) {
    EXPECT_LT(vec[i - 1].first, vec[i].first) << "vector must be sorted";
  }
  for (const auto& [table, version] : vec) {
    EXPECT_EQ(version, database.TableVersion(table));
  }

  const db::Table* orders = database.FindTable("orders");
  std::vector<Value> row;
  for (size_t c = 0; c < orders->num_columns(); ++c) {
    row.push_back(orders->column(c).at(0));
  }
  ASSERT_TRUE(database.AppendRows("orders", {row}).ok());
  auto bumped = database.VersionVector();
  ASSERT_EQ(bumped.size(), vec.size());
  for (size_t i = 0; i < vec.size(); ++i) {
    EXPECT_EQ(bumped[i].first, vec[i].first);
    if (bumped[i].first == "orders") {
      EXPECT_EQ(bumped[i].second, vec[i].second + 1);
    } else {
      EXPECT_EQ(bumped[i].second, vec[i].second);
    }
  }
}

}  // namespace
}  // namespace db
}  // namespace aggchecker
