#include "db/table.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace aggchecker {
namespace db {
namespace {

TEST(TableTest, FromCsvInfersTypes) {
  auto data = csv::Parse("name,games,score\nA,3,1.5\nB,7,2\n");
  auto table = Table::FromCsv("t", *data);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->FindColumn("name")->type(), ValueType::kString);
  EXPECT_EQ(table->FindColumn("games")->type(), ValueType::kLong);
  // 1.5 and 2 mixed -> DOUBLE; the long 2 is coerced.
  EXPECT_EQ(table->FindColumn("score")->type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(table->FindColumn("score")->at(1).AsDoubleExact(), 2.0);
}

TEST(TableTest, MixedNumericAndTextIsString) {
  auto data = csv::Parse("games\n16\nindef\n4\n");
  auto table = Table::FromCsv("t", *data);
  ASSERT_TRUE(table.ok());
  const Column* col = table->FindColumn("games");
  EXPECT_EQ(col->type(), ValueType::kString);
  // Numeric-looking cells keep their text rendering in a string column.
  EXPECT_EQ(col->at(0).AsString(), "16");
  EXPECT_EQ(col->at(1).AsString(), "indef");
}

TEST(TableTest, NullsCountedPerColumn) {
  auto data = csv::Parse("x\n1\n\n3\n\n");
  auto table = Table::FromCsv("t", *data);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->FindColumn("x")->null_count(), 2u);
  EXPECT_EQ(table->FindColumn("x")->type(), ValueType::kLong);
}

TEST(TableTest, ColumnLookupCaseInsensitive) {
  auto database = testing_fixtures::MakeNflDatabase();
  const Table* t = database.FindTable("NFLSUSPENSIONS");
  ASSERT_NE(t, nullptr);
  EXPECT_NE(t->FindColumn("GAMES"), nullptr);
  EXPECT_NE(t->FindColumn("games"), nullptr);
  EXPECT_EQ(t->FindColumn("nope"), nullptr);
  EXPECT_EQ(t->ColumnIndex("Category"), 3);
}

TEST(TableTest, DuplicateColumnRejected) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("a", ValueType::kLong).ok());
  EXPECT_FALSE(t.AddColumn("A", ValueType::kLong).ok());
}

TEST(TableTest, AddColumnAfterRowsRejected) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("a", ValueType::kLong).ok());
  ASSERT_TRUE(t.AddRow({Value(int64_t{1})}).ok());
  EXPECT_FALSE(t.AddColumn("b", ValueType::kLong).ok());
}

TEST(TableTest, RowArityChecked) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("a", ValueType::kLong).ok());
  ASSERT_TRUE(t.AddColumn("b", ValueType::kLong).ok());
  EXPECT_FALSE(t.AddRow({Value(int64_t{1})}).ok());
}

TEST(TableTest, EmptyHeaderRejected) {
  csv::CsvData data;
  EXPECT_FALSE(Table::FromCsv("t", data).ok());
}

TEST(ColumnTest, DistinctValuesInAppearanceOrder) {
  auto database = testing_fixtures::MakeNflDatabase();
  const Column* games =
      database.FindTable("nflsuspensions")->FindColumn("Games");
  const auto& distinct = games->DistinctValues();
  ASSERT_EQ(distinct.size(), 6u);  // indef, 16, 8, 4, 2, 1
  EXPECT_EQ(distinct[0].ToString(), "indef");
  EXPECT_EQ(games->DistinctIndexOf(Value(std::string("indef"))), 0);
  EXPECT_EQ(games->DistinctIndexOf(Value(std::string("nope"))), -1);
}

TEST(ColumnTest, DictionaryInvalidatedByAppend) {
  Column c("c", ValueType::kLong);
  c.Append(Value(int64_t{1}));
  EXPECT_EQ(c.DistinctValues().size(), 1u);
  c.Append(Value(int64_t{2}));
  EXPECT_EQ(c.DistinctValues().size(), 2u);
  c.Append(Value(int64_t{2}));
  EXPECT_EQ(c.DistinctValues().size(), 2u);
}

}  // namespace
}  // namespace db
}  // namespace aggchecker
