#include "db/table.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace aggchecker {
namespace db {
namespace {

TEST(TableTest, FromCsvInfersTypes) {
  auto data = csv::Parse("name,games,score\nA,3,1.5\nB,7,2\n");
  auto table = Table::FromCsv("t", *data);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->FindColumn("name")->type(), ValueType::kString);
  EXPECT_EQ(table->FindColumn("games")->type(), ValueType::kLong);
  // 1.5 and 2 mixed -> DOUBLE; the long 2 is coerced.
  EXPECT_EQ(table->FindColumn("score")->type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(table->FindColumn("score")->at(1).AsDoubleExact(), 2.0);
}

TEST(TableTest, MixedNumericAndTextIsString) {
  auto data = csv::Parse("games\n16\nindef\n4\n");
  auto table = Table::FromCsv("t", *data);
  ASSERT_TRUE(table.ok());
  const Column* col = table->FindColumn("games");
  EXPECT_EQ(col->type(), ValueType::kString);
  // Numeric-looking cells keep their text rendering in a string column.
  EXPECT_EQ(col->at(0).AsString(), "16");
  EXPECT_EQ(col->at(1).AsString(), "indef");
}

TEST(TableTest, NullsCountedPerColumn) {
  auto data = csv::Parse("x\n1\n\n3\n\n");
  auto table = Table::FromCsv("t", *data);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->FindColumn("x")->null_count(), 2u);
  EXPECT_EQ(table->FindColumn("x")->type(), ValueType::kLong);
}

TEST(TableTest, ColumnLookupCaseInsensitive) {
  auto database = testing_fixtures::MakeNflDatabase();
  const Table* t = database.FindTable("NFLSUSPENSIONS");
  ASSERT_NE(t, nullptr);
  EXPECT_NE(t->FindColumn("GAMES"), nullptr);
  EXPECT_NE(t->FindColumn("games"), nullptr);
  EXPECT_EQ(t->FindColumn("nope"), nullptr);
  EXPECT_EQ(t->ColumnIndex("Category"), 3);
}

TEST(TableTest, DuplicateColumnRejected) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("a", ValueType::kLong).ok());
  EXPECT_FALSE(t.AddColumn("A", ValueType::kLong).ok());
}

TEST(TableTest, AddColumnAfterRowsRejected) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("a", ValueType::kLong).ok());
  ASSERT_TRUE(t.AddRow({Value(int64_t{1})}).ok());
  EXPECT_FALSE(t.AddColumn("b", ValueType::kLong).ok());
}

TEST(TableTest, RowArityChecked) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("a", ValueType::kLong).ok());
  ASSERT_TRUE(t.AddColumn("b", ValueType::kLong).ok());
  EXPECT_FALSE(t.AddRow({Value(int64_t{1})}).ok());
}

TEST(TableTest, EmptyHeaderRejected) {
  csv::CsvData data;
  EXPECT_FALSE(Table::FromCsv("t", data).ok());
}

TEST(ColumnTest, DistinctValuesInAppearanceOrder) {
  auto database = testing_fixtures::MakeNflDatabase();
  const Column* games =
      database.FindTable("nflsuspensions")->FindColumn("Games");
  const auto& distinct = games->DistinctValues();
  ASSERT_EQ(distinct.size(), 6u);  // indef, 16, 8, 4, 2, 1
  EXPECT_EQ(distinct[0].ToString(), "indef");
  EXPECT_EQ(games->DistinctIndexOf(Value(std::string("indef"))), 0);
  EXPECT_EQ(games->DistinctIndexOf(Value(std::string("nope"))), -1);
}

TEST(ColumnTest, DictionaryInvalidatedByAppend) {
  Column c("c", ValueType::kLong);
  c.Append(Value(int64_t{1}));
  EXPECT_EQ(c.DistinctValues().size(), 1u);
  c.Append(Value(int64_t{2}));
  EXPECT_EQ(c.DistinctValues().size(), 2u);
  c.Append(Value(int64_t{2}));
  EXPECT_EQ(c.DistinctValues().size(), 2u);
}

// Version semantics (DESIGN.md §16): the counter starts at 1, the staging
// path (AddRow) never bumps it, and each post-build mutation bumps it by
// exactly one.
TEST(TableVersionTest, IngestionBumpsVersionStagingDoesNot) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("x", ValueType::kLong).ok());
  EXPECT_EQ(t.version(), 1u);
  ASSERT_TRUE(t.AddRow({Value(int64_t{1})}).ok());
  EXPECT_EQ(t.version(), 1u) << "staging rows must not bump the version";

  ASSERT_TRUE(t.AppendRows({{Value(int64_t{2})}, {Value(int64_t{3})}}).ok());
  EXPECT_EQ(t.version(), 2u);
  EXPECT_EQ(t.num_rows(), 3u);

  ASSERT_TRUE(t.UpdateCell(0, "x", Value(int64_t{9})).ok());
  EXPECT_EQ(t.version(), 3u);
  EXPECT_EQ(t.column(0).at(0).AsLong(), 9);
}

// A rejected batch is atomic: whole-batch validation runs before any
// mutation, so a bad row anywhere leaves rows, values, and the version
// exactly as they were.
TEST(TableVersionTest, RejectedAppendLeavesTableUntouched) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("x", ValueType::kLong).ok());
  ASSERT_TRUE(t.AddColumn("s", ValueType::kString).ok());
  ASSERT_TRUE(t.AddRow({Value(int64_t{1}), Value(std::string("a"))}).ok());

  // Second row has wrong arity; first is valid — neither must land.
  Status s = t.AppendRows({{Value(int64_t{2}), Value(std::string("b"))},
                           {Value(int64_t{3})}});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.version(), 1u);

  // Type violation: a string into a LONG column.
  s = t.AppendRows({{Value(std::string("nope")), Value(std::string("b"))}});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.version(), 1u);

  // Out-of-range / unknown-column updates are also version-neutral.
  EXPECT_FALSE(t.UpdateCell(5, "x", Value(int64_t{0})).ok());
  EXPECT_FALSE(t.UpdateCell(0, "nope", Value(int64_t{0})).ok());
  EXPECT_EQ(t.version(), 1u);
}

// A DOUBLE column coerces appended longs exactly like the build path, and
// the appended rows are visible through the flat view and dictionary.
TEST(TableVersionTest, AppendCoercesAndRebuildsDerivedViews) {
  auto data = csv::Parse("score\n1.5\n2\n");
  auto table = Table::FromCsv("t", *data);
  ASSERT_TRUE(table.ok());
  const Column* col = table->FindColumn("score");
  ASSERT_EQ(col->type(), ValueType::kDouble);
  (void)col->Flat();  // build the lazy views pre-append

  ASSERT_TRUE(table->AppendRows({{Value(int64_t{4})}}).ok());
  EXPECT_EQ(table->version(), 2u);
  const Column::FlatView& flat = col->Flat();
  ASSERT_EQ(flat.size, 3u);
  EXPECT_DOUBLE_EQ(flat.doubles[2], 4.0);
  EXPECT_EQ(col->DistinctValues().size(), 3u);
}

// FromSnapshotParts restores the recorded version so caches stamped against
// the pre-snapshot counter stay comparable after a save/load cycle.
TEST(TableVersionTest, FromSnapshotPartsRestoresVersion) {
  std::vector<std::unique_ptr<Column>> columns;
  auto col = std::make_unique<Column>("x", ValueType::kLong);
  col->Append(Value(int64_t{1}));
  columns.push_back(std::move(col));
  auto t = Table::FromSnapshotParts("t", std::move(columns), 1, 7);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->version(), 7u);
  ASSERT_TRUE(t->AppendRows({{Value(int64_t{2})}}).ok());
  EXPECT_EQ(t->version(), 8u);
}

}  // namespace
}  // namespace db
}  // namespace aggchecker
