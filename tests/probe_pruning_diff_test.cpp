// Verification-aware candidate pruning (DESIGN.md §17): reports with
// probe_pruning on must be bit-identical (FleetVerdictFingerprint) to the
// unpruned reference, with equal governor charge totals, across the
// embedded article corpus, thread counts, budgets, and ingestion-mutated
// databases. Also pins the probe_verify zero-conflict contract (an unsound
// probe bound shows up here before it can ever flip a verdict) and the
// stale-stats regression: a probe decision must never outlive the
// data-version bump that invalidates it.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/aggchecker.h"
#include "core/fleet_scheduler.h"
#include "corpus/embedded_articles.h"
#include "corpus/generator.h"
#include "corpus/harness.h"
#include "db/database.h"
#include "db/table.h"
#include "text/document.h"
#include "util/rounding.h"

namespace aggchecker {
namespace {

struct RunOutcome {
  std::string fingerprint;
  core::CheckReport report;
};

/// One Check with `pruning` on/off; the unpruned run adopts `catalog` so
/// both sides translate over the identical fragment space.
RunOutcome RunOnce(const db::Database* db, const text::TextDocument& doc,
                   bool pruning, size_t threads, uint64_t budget,
                   std::shared_ptr<const fragments::FragmentCatalog> catalog =
                       nullptr) {
  core::CheckOptions options;
  options.probe_pruning = pruning;
  options.model.num_threads = threads;
  options.governor.max_row_scans = budget;
  options.prebuilt_catalog = std::move(catalog);
  auto checker = core::AggChecker::Create(db, options);
  EXPECT_TRUE(checker.ok());
  auto report = checker->Check(doc);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  RunOutcome out;
  out.fingerprint = core::FleetVerdictFingerprint(*report);
  out.report = std::move(*report);
  return out;
}

void ExpectChargeParity(const core::CheckReport& pruned,
                        const core::CheckReport& reference,
                        const std::string& where, size_t threads = 1) {
  // Charge totals are part of the bit-identity surface: a prune that
  // changed what the governor saw would make budgets non-reproducible.
  // (`checkpoints` is diagnostic and thread-dependent — excluded.)
  // One caveat, independent of pruning: when a budget trips at >1 thread,
  // in-flight workers may each land one more amortized charge block before
  // observing the trip, so the *total at exhaustion* is
  // interleaving-dependent (the same unpruned config run twice can differ
  // by a block). Exact row parity is asserted wherever charging is
  // deterministic — one thread, or an un-tripped budget; a tripped
  // multi-thread run still asserts the exhaustion flag and everything
  // downstream of it (the fingerprint covers the verdicts).
  if (threads == 1 || !reference.governor_usage.exhausted) {
    EXPECT_EQ(pruned.governor_usage.rows_charged,
              reference.governor_usage.rows_charged)
        << where;
    EXPECT_EQ(pruned.governor_usage.cube_groups_charged,
              reference.governor_usage.cube_groups_charged)
        << where;
    EXPECT_EQ(pruned.governor_usage.memory_bytes_charged,
              reference.governor_usage.memory_bytes_charged)
        << where;
  }
  EXPECT_EQ(pruned.governor_usage.exhausted,
            reference.governor_usage.exhausted)
      << where;
}

// The tentpole sweep: every embedded article, 1/2/8 threads, with and
// without a row-scan budget. Pruned and unpruned verdicts bit-identical,
// charge totals equal.
TEST(ProbePruningDiffTest, BitIdenticalAcrossCorpusThreadsAndBudgets) {
  auto articles = corpus::EmbeddedArticles();
  ASSERT_FALSE(articles.empty());
  for (const corpus::CorpusCase& article : articles) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      for (uint64_t budget : {uint64_t{0}, uint64_t{20'000}}) {
        RunOutcome pruned = RunOnce(&article.database, article.document,
                                    /*pruning=*/true, threads, budget);
        RunOutcome reference = RunOnce(&article.database, article.document,
                                       /*pruning=*/false, threads, budget);
        std::string where = article.name + " threads=" +
                            std::to_string(threads) +
                            " budget=" + std::to_string(budget);
        EXPECT_EQ(pruned.fingerprint, reference.fingerprint) << where;
        ExpectChargeParity(pruned.report, reference.report, where, threads);
        EXPECT_EQ(pruned.report.NumPartial(), reference.report.NumPartial())
            << where;
        // The unpruned reference never probes; the pruned run always does
        // (probing is cheap — pruning is opportunistic).
        EXPECT_EQ(reference.report.probe_stats.candidates_probed, 0u);
        EXPECT_GT(pruned.report.probe_stats.candidates_probed, 0u) << where;
      }
    }
  }
}

// The same identity sweep over a randomized generated corpus — schemas,
// vocabularies, and claim mixes the hand-written articles don't cover.
TEST(ProbePruningDiffTest, BitIdenticalOnGeneratedFleetCorpus) {
  corpus::GeneratorOptions gen;
  gen.num_cases = 6;
  gen.seed = 1234;
  auto cases = corpus::GenerateCorpus(gen);
  ASSERT_EQ(cases.size(), 6u);
  size_t total_probed = 0;
  for (const corpus::CorpusCase& c : cases) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      RunOutcome pruned =
          RunOnce(&c.database, c.document, /*pruning=*/true, threads, 0);
      RunOutcome reference =
          RunOnce(&c.database, c.document, /*pruning=*/false, threads, 0);
      EXPECT_EQ(pruned.fingerprint, reference.fingerprint)
          << c.name << " threads=" << threads;
      ExpectChargeParity(pruned.report, reference.report,
                         c.name + " threads=" + std::to_string(threads),
                         threads);
      total_probed += pruned.report.probe_stats.candidates_probed;
    }
  }
  EXPECT_GT(total_probed, 0u);
}

// probe_verify: every probe runs AND every candidate evaluates for real;
// any disagreement between a synthesized outcome and the actual evaluation
// is counted. Must be zero everywhere — a conflict is an unsound bound.
TEST(ProbePruningDiffTest, VerifyModeFindsNoConflicts) {
  auto articles = corpus::EmbeddedArticles();
  ASSERT_FALSE(articles.empty());
  size_t total_probed = 0;
  for (const corpus::CorpusCase& article : articles) {
    for (bool naive : {false, true}) {
      core::CheckOptions options;
      options.probe_verify = true;
      if (naive) options.strategy = db::EvalStrategy::kNaive;
      auto checker = core::AggChecker::Create(&article.database, options);
      ASSERT_TRUE(checker.ok());
      auto report = checker->Check(article.document);
      ASSERT_TRUE(report.ok());
      EXPECT_EQ(report->probe_stats.probe_conflicts, 0u)
          << article.name << (naive ? " (naive)" : "")
          << ": synthesized and real outcomes disagreed";
      total_probed += report->probe_stats.candidates_probed;
    }
  }
  EXPECT_GT(total_probed, 0u);
}

// Magnitude pruning engages on the article corpus (claims whose value is
// orders of magnitude outside the aggregate's attainable range), and the
// reported top queries still carry honest results: a probe-decided
// candidate that reaches the report is backfilled with its real value, so
// `matches` is always consistent with `result`.
TEST(ProbePruningDiffTest, PrunesAndBackfillsHonestly) {
  auto articles = corpus::EmbeddedArticles();
  ASSERT_FALSE(articles.empty());
  size_t total_pruned = 0;
  for (const corpus::CorpusCase& article : articles) {
    core::CheckOptions options;
    auto checker = core::AggChecker::Create(&article.database, options);
    ASSERT_TRUE(checker.ok());
    auto report = checker->Check(article.document);
    ASSERT_TRUE(report.ok());
    total_pruned += report->probe_stats.candidates_pruned;
    EXPECT_GE(report->probe_stats.candidates_pruned,
              report->probe_stats.pruned_magnitude);
    for (const core::ClaimVerdict& v : report->verdicts) {
      for (const model::RankedCandidate& cand : v.top_queries) {
        if (!cand.result.has_value()) continue;
        EXPECT_EQ(cand.matches,
                  rounding::Matches(*cand.result, v.claim.claimed_value(),
                                    rounding::RoundingMode::kSignificantDigits))
            << article.name << ": reported match inconsistent with result";
      }
    }
  }
  EXPECT_GT(total_pruned, 0u)
      << "the probe never pruned anything on the whole corpus — the ladder "
         "is dead code or the bench gate will fail";
}

// Stale-stats regression: a literal absent after an UpdateCell (the only
// row holding it rewritten) must be domain-pruned, and a later append that
// reintroduces values/extends bounds must invalidate that decision. Pruned
// and unpruned runs stay bit-identical at every step of the mutation.
TEST(ProbePruningDiffTest, IngestionInvalidatesProbeDecisions) {
  corpus::CorpusCase article = corpus::MakeDonationsJoinCase();

  // Stamp the fragment space before mutating: the catalog deliberately does
  // not track ingestion, so literals it indexed can go stale in the data —
  // exactly the situation the domain probe must handle soundly.
  auto warm = core::AggChecker::Create(&article.database, {});
  ASSERT_TRUE(warm.ok());
  auto baseline = warm->Check(article.document);
  ASSERT_TRUE(baseline.ok());
  auto catalog = warm->shared_catalog();

  // Mutate: rewrite row 0 of every string column of the first table to an
  // existing value of another row where possible (may orphan catalog
  // literals), and append rows that move the numeric bounds.
  db::Database& database = article.database;
  const db::Table& first = database.table(0);
  const std::string table_name = first.name();
  for (size_t c = 0; c < first.num_columns(); ++c) {
    const db::Column& col = first.column(c);
    if (col.type() != db::ValueType::kString || col.values().size() < 2) {
      continue;
    }
    ASSERT_TRUE(
        database.UpdateCell(table_name, 0, col.name(), col.values()[1]).ok());
  }
  ASSERT_TRUE(corpus::AppendSyntheticRows(&database, table_name, 16).ok());

  for (size_t threads : {size_t{1}, size_t{2}}) {
    RunOutcome pruned = RunOnce(&database, article.document,
                                /*pruning=*/true, threads, 0, catalog);
    RunOutcome reference = RunOnce(&database, article.document,
                                   /*pruning=*/false, threads, 0, catalog);
    EXPECT_EQ(pruned.fingerprint, reference.fingerprint)
        << "threads=" << threads;
    ExpectChargeParity(pruned.report, reference.report,
                       "mutated threads=" + std::to_string(threads), threads);
  }
}

// Incremental re-verification composes with pruning: ReCheck (pruning on)
// against a pruned prior is bit-identical to a from-scratch unpruned Check
// on the mutated data.
TEST(ProbePruningDiffTest, ReCheckWithPruningMatchesUnprunedScratch) {
  corpus::CorpusCase article = corpus::MakeDonationsJoinCase();
  auto warm = core::AggChecker::Create(&article.database, {});
  ASSERT_TRUE(warm.ok());
  auto prior = warm->Check(article.document);
  ASSERT_TRUE(prior.ok());

  ASSERT_TRUE(
      corpus::AppendSyntheticRows(&article.database, "gifts", 12).ok());
  auto recheck = warm->ReCheck(article.document, *prior);
  ASSERT_TRUE(recheck.ok());

  RunOutcome reference =
      RunOnce(&article.database, article.document, /*pruning=*/false, 1, 0,
              warm->shared_catalog());
  EXPECT_EQ(core::FleetVerdictFingerprint(*recheck), reference.fingerprint);
}

// The string evaluation path (naive strategy, or query_fingerprints off)
// prunes by skipping evaluation outright — work-proportional charging —
// so core enables it only under an unlimited governor, where it must stay
// bit-identical to the unpruned run; any budget forces it probe-free.
TEST(ProbePruningDiffTest, StringPathPrunesOnlyWhenUnbudgeted) {
  corpus::CorpusCase article = corpus::MakeNflCase();

  for (bool naive : {true, false}) {
    core::CheckOptions pruned;
    if (naive) {
      pruned.strategy = db::EvalStrategy::kNaive;
    } else {
      pruned.query_fingerprints = false;
    }
    pruned.probe_pruning = true;
    core::CheckOptions reference = pruned;
    reference.probe_pruning = false;
    auto pruned_checker =
        core::AggChecker::Create(&article.database, pruned);
    ASSERT_TRUE(pruned_checker.ok());
    auto reference_checker =
        core::AggChecker::Create(&article.database, reference);
    ASSERT_TRUE(reference_checker.ok());
    auto pruned_report = pruned_checker->Check(article.document);
    ASSERT_TRUE(pruned_report.ok());
    auto reference_report = reference_checker->Check(article.document);
    ASSERT_TRUE(reference_report.ok());
    EXPECT_GT(pruned_report->probe_stats.candidates_probed, 0u)
        << (naive ? "naive" : "strings");
    EXPECT_EQ(core::FleetVerdictFingerprint(*pruned_report),
              core::FleetVerdictFingerprint(*reference_report))
        << (naive ? "naive" : "strings");

    // Under a budget the string path has no way to prune without moving
    // the governor's exhaustion point, so core keeps it probe-free.
    core::CheckOptions budgeted = pruned;
    budgeted.governor.max_row_scans = 20'000;
    auto budgeted_checker =
        core::AggChecker::Create(&article.database, budgeted);
    ASSERT_TRUE(budgeted_checker.ok());
    auto budgeted_report = budgeted_checker->Check(article.document);
    ASSERT_TRUE(budgeted_report.ok());
    EXPECT_EQ(budgeted_report->probe_stats.candidates_probed, 0u)
        << (naive ? "naive" : "strings");
  }
}

}  // namespace
}  // namespace aggchecker
