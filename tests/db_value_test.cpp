#include "db/value.h"

#include <gtest/gtest.h>

namespace aggchecker {
namespace db {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value().is_null());
  Value l(int64_t{42});
  EXPECT_EQ(l.type(), ValueType::kLong);
  EXPECT_EQ(l.AsLong(), 42);
  Value d(2.5);
  EXPECT_EQ(d.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(d.AsDoubleExact(), 2.5);
  Value s(std::string("x"));
  EXPECT_EQ(s.type(), ValueType::kString);
  EXPECT_EQ(s.AsString(), "x");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_NE(Value(int64_t{3}), Value(3.5));
  // Equal values must hash equally (unordered_map invariant).
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
}

TEST(ValueTest, NullComparesOnlyToNull) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(int64_t{0}));
  EXPECT_NE(Value::Null(), Value(std::string("")));
}

TEST(ValueTest, OrderingNullFirst) {
  EXPECT_TRUE(Value::Null() < Value(int64_t{-100}));
  EXPECT_FALSE(Value(int64_t{1}) < Value::Null());
  EXPECT_TRUE(Value(int64_t{1}) < Value(2.5));
  EXPECT_TRUE(Value(std::string("a")) < Value(std::string("b")));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value(std::string("hi")).ToString(), "hi");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(ParseCellTest, DetectsTypes) {
  EXPECT_EQ(ParseCell("42").type(), ValueType::kLong);
  EXPECT_EQ(ParseCell("-17").type(), ValueType::kLong);
  EXPECT_EQ(ParseCell("2.5").type(), ValueType::kDouble);
  EXPECT_EQ(ParseCell("1e3").type(), ValueType::kDouble);
  EXPECT_EQ(ParseCell("hello").type(), ValueType::kString);
  EXPECT_EQ(ParseCell("").type(), ValueType::kNull);
  EXPECT_EQ(ParseCell("  ").type(), ValueType::kNull);
  EXPECT_EQ(ParseCell("NA").type(), ValueType::kNull);
  EXPECT_EQ(ParseCell("NULL").type(), ValueType::kNull);
}

TEST(ParseCellTest, ThousandsSeparators) {
  Value v = ParseCell("1,200");
  EXPECT_EQ(v.type(), ValueType::kLong);
  EXPECT_EQ(v.AsLong(), 1200);
}

TEST(ParseCellTest, TrimsWhitespace) {
  EXPECT_EQ(ParseCell("  7 ").AsLong(), 7);
  EXPECT_EQ(ParseCell(" abc ").AsString(), "abc");
}

TEST(ParseCellTest, MixedAlphanumericIsString) {
  EXPECT_EQ(ParseCell("12abc").type(), ValueType::kString);
  EXPECT_EQ(ParseCell("indef").type(), ValueType::kString);
}

}  // namespace
}  // namespace db
}  // namespace aggchecker
