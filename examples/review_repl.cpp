// Interactive review REPL — the closest text-mode equivalent of the
// AggChecker UI (Figure 3). Loads the NFL demo case (or an article + CSVs
// from the command line), then accepts commands:
//
//   list                 claims with verdicts
//   show <claim>         top candidates for one claim
//   pick <claim> <rank>  confirm a candidate (Figure 3(c))
//   custom <claim> <sql> pin a hand-written query (Figure 3(d))
//   dismiss <claim>      prune a spurious detection
//   auto <claim>         clear a correction / dismissal
//   refresh              re-translate, propagating corrections
//   markup               print the marked-up article
//   html <path>          write the full HTML report
//   quit
//
//   $ ./build/examples/review_repl
//   $ ./build/examples/review_repl article.html data.csv

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/interactive_session.h"
#include "core/markup.h"
#include "core/query_describer.h"
#include "core/report_writer.h"
#include "corpus/embedded_articles.h"
#include "db/sql_parser.h"
#include "util/strings.h"

using namespace aggchecker;

namespace {

void PrintList(const core::InteractiveSession& session) {
  for (size_t i = 0; i < session.report().verdicts.size(); ++i) {
    const auto& v = session.report().verdicts[i];
    if (v.dismissed) {
      std::printf("%2zu. \"%s\"  [dismissed]\n", i,
                  v.claim.number.raw.c_str());
      continue;
    }
    std::printf("%2zu. \"%s\"  %s%s  p(correct)=%.2f\n", i,
                v.claim.number.raw.c_str(),
                v.likely_erroneous ? "FLAGGED " : "verified",
                session.IsPinned(i) ? " [pinned]" : "",
                v.correctness_probability);
  }
}

void PrintClaim(const core::InteractiveSession& session, size_t idx) {
  if (idx >= session.report().verdicts.size()) {
    std::printf("no such claim\n");
    return;
  }
  const auto& v = session.report().verdicts[idx];
  std::printf("claim %zu: \"%s\" — %s\n", idx, v.claim.number.raw.c_str(),
              v.likely_erroneous ? "LIKELY ERRONEOUS" : "verified");
  for (size_t r = 0; r < v.top_queries.size() && r < 5; ++r) {
    const auto& cand = v.top_queries[r];
    std::printf("  %zu. p=%.3f %s %s\n", r + 1, cand.probability,
                cand.matches ? "[match]" : "[ no  ]",
                core::DescribeQuery(cand.query).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  corpus::CorpusCase demo = corpus::MakeNflCase();
  db::Database* database = &demo.database;
  text::TextDocument* doc = &demo.document;

  db::Database loaded("input");
  text::TextDocument loaded_doc;
  if (argc >= 3) {
    std::ifstream article(argv[1]);
    std::ostringstream buf;
    buf << article.rdbuf();
    auto parsed = text::ParseDocument(buf.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    loaded_doc = std::move(*parsed);
    for (int i = 2; i < argc; ++i) {
      auto data = csv::ReadFile(argv[i]);
      if (!data.ok()) {
        std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
        return 1;
      }
      std::string name = argv[i];
      size_t slash = name.find_last_of('/');
      if (slash != std::string::npos) name = name.substr(slash + 1);
      size_t dot = name.find_last_of('.');
      if (dot != std::string::npos) name = name.substr(0, dot);
      (void)loaded.AddTable(*db::Table::FromCsv(name, *data));
    }
    database = &loaded;
    doc = &loaded_doc;
  }

  auto checker = core::AggChecker::Create(database);
  if (!checker.ok()) {
    std::fprintf(stderr, "%s\n", checker.status().ToString().c_str());
    return 1;
  }
  auto session = core::InteractiveSession::Start(&*checker, doc);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  std::printf("AggChecker review session: %zu claims. Type 'help'.\n",
              session->num_claims());
  PrintList(*session);

  std::string line;
  while (std::printf("> ") && std::getline(std::cin, line)) {
    auto parts = strings::SplitWhitespace(line);
    if (parts.empty()) continue;
    const std::string& cmd = parts[0];
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      std::printf("commands: list | show <i> | pick <i> <rank> | custom <i> <sql> | dismiss <i> | auto <i> "
                  "| refresh | markup | html <path> | quit\n");
    } else if (cmd == "list") {
      PrintList(*session);
    } else if (cmd == "show" && parts.size() >= 2) {
      PrintClaim(*session, std::strtoul(parts[1].c_str(), nullptr, 10));
    } else if (cmd == "pick" && parts.size() >= 3) {
      Status s = session->SelectCandidate(
          std::strtoul(parts[1].c_str(), nullptr, 10),
          std::strtoul(parts[2].c_str(), nullptr, 10));
      std::printf("%s\n", s.ok() ? "pinned (run 'refresh')"
                                 : s.ToString().c_str());
    } else if (cmd == "custom" && parts.size() >= 3) {
      size_t idx = std::strtoul(parts[1].c_str(), nullptr, 10);
      std::string sql = line.substr(line.find(parts[2]));
      auto query = db::ParseSql(sql, *database);
      if (!query.ok()) {
        std::printf("%s\n", query.status().ToString().c_str());
        continue;
      }
      Status s = session->SetCustomQuery(idx, std::move(*query));
      std::printf("%s\n", s.ok() ? "pinned (run 'refresh')"
                                 : s.ToString().c_str());
    } else if (cmd == "dismiss" && parts.size() >= 2) {
      Status s = session->DismissClaim(
          std::strtoul(parts[1].c_str(), nullptr, 10));
      std::printf("%s\n", s.ok() ? "dismissed (run 'refresh')"
                                 : s.ToString().c_str());
    } else if (cmd == "auto" && parts.size() >= 2) {
      Status s = session->ClearCorrection(
          std::strtoul(parts[1].c_str(), nullptr, 10));
      std::printf("%s\n", s.ok() ? "cleared" : s.ToString().c_str());
    } else if (cmd == "refresh") {
      Status s = session->Refresh();
      std::printf("%s\n", s.ok() ? "re-translated" : s.ToString().c_str());
      PrintList(*session);
    } else if (cmd == "markup") {
      std::printf("%s\n",
                  core::RenderMarkup(*doc, session->report(),
                                     core::MarkupStyle::kAnsi)
                      .c_str());
    } else if (cmd == "html" && parts.size() >= 2) {
      std::ofstream out(parts[1]);
      out << core::WriteHtmlReport(*doc, session->report());
      std::printf("wrote %s\n", parts[1].c_str());
    } else {
      std::printf("unknown command; type 'help'\n");
    }
  }
  return 0;
}
