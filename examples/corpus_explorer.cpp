// Corpus explorer: generate a synthetic article/data-set pair, print the
// article with ground truth, run the checker, and compare verdict against
// truth claim by claim. Useful for inspecting what the generator produces
// and where the pipeline succeeds or fails.
//
//   $ ./build/examples/corpus_explorer [case_index] [seed]

#include <cstdio>
#include <cstdlib>

#include "core/aggchecker.h"
#include "corpus/generator.h"
#include "corpus/metrics.h"

using namespace aggchecker;

int main(int argc, char** argv) {
  size_t case_index = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 7;
  corpus::GeneratorOptions options;
  if (argc > 2) options.seed = std::strtoull(argv[2], nullptr, 10);

  corpus::CorpusCase c = corpus::GenerateCase(case_index, options);
  std::printf("case: %s (source style: %s)\n", c.name.c_str(),
              c.source.c_str());
  const db::Table& table = c.database.table(0);
  std::printf("data set: table '%s' with %zu rows, %zu columns\n\n",
              table.name().c_str(), table.num_rows(), table.num_columns());

  std::printf("=== article ===\n# %s\n", c.document.title().c_str());
  int last_section = -2;
  for (const auto& para : c.document.paragraphs()) {
    if (para.section != last_section && para.section >= 0) {
      std::printf("\n## %s\n",
                  c.document.section(para.section).headline.c_str());
    }
    last_section = para.section;
    for (int s : para.sentence_indices) {
      std::printf("%s ", c.document.sentence(s).text.c_str());
    }
    std::printf("\n");
  }

  core::CheckOptions check_options;
  check_options.report_top_k = 20;
  auto checker = core::AggChecker::Create(&c.database, check_options);
  auto report = checker->Check(c.document);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("\n=== claim-by-claim ===\n");
  for (size_t i = 0; i < report->verdicts.size(); ++i) {
    const auto& v = report->verdicts[i];
    const auto& g = c.ground_truth[i];
    size_t rank = corpus::GroundTruthRank(g, v);
    std::printf("%2zu. claimed=%-10g truth=%-10g %s\n", i + 1,
                g.claimed_value, g.true_value,
                g.is_erroneous ? "(erroneous claim)" : "");
    std::printf("    ground truth: %s\n", g.query.ToSql().c_str());
    std::printf("    system rank of ground truth: %s, verdict: %s %s\n",
                rank == 0 ? "not in top-20" : std::to_string(rank).c_str(),
                v.likely_erroneous ? "flagged" : "verified",
                v.likely_erroneous == g.is_erroneous ? "[agrees]"
                                                     : "[disagrees]");
  }

  auto detection = corpus::ScoreErrorDetection(c, *report);
  auto coverage = corpus::ScoreCoverage(c, *report);
  std::printf("\ntop-1 coverage %.0f%%, top-5 %.0f%%; error detection "
              "recall %.0f%% precision %.0f%%\n",
              coverage.TopK(1), coverage.TopK(5), detection.Recall() * 100,
              detection.Precision() * 100);
  return 0;
}
