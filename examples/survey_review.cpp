// Interactive-style review of a survey summary (Figure 3's workflow, in
// text form): for every claim show the top-5 candidate translations with
// their probabilities and evaluation results — what a user would click
// through in the AggChecker UI.
//
//   $ ./build/examples/survey_review

#include <cstdio>

#include "core/aggchecker.h"
#include "core/query_describer.h"
#include "corpus/embedded_articles.h"

using namespace aggchecker;

int main() {
  corpus::CorpusCase survey = corpus::MakeDeveloperSurveyCase();

  core::CheckOptions options;
  options.report_top_k = 5;
  auto checker = core::AggChecker::Create(&survey.database, options);
  if (!checker.ok()) {
    std::fprintf(stderr, "%s\n", checker.status().ToString().c_str());
    return 1;
  }
  auto report = checker->Check(survey.document);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("Reviewing: %s\n", survey.document.title().c_str());
  std::printf("Data set: %zu rows, %zu columns\n\n",
              survey.database.table(0).num_rows(),
              survey.database.table(0).num_columns());

  for (const auto& v : report->verdicts) {
    const auto& sentence = survey.document.sentence(v.claim.sentence);
    std::printf("----------------------------------------------------\n");
    std::printf("claim \"%s\" in: %s\n", v.claim.number.raw.c_str(),
                sentence.text.c_str());
    std::printf("verdict: %s (correctness probability %.2f)\n",
                v.likely_erroneous ? "LIKELY ERRONEOUS" : "verified",
                v.correctness_probability);
    std::printf("top candidates (of %zu in the space):\n",
                v.total_candidates);
    for (size_t r = 0; r < v.top_queries.size(); ++r) {
      const auto& cand = v.top_queries[r];
      std::printf("  %zu. p=%.3f %s %s\n", r + 1, cand.probability,
                  cand.matches ? "[match]" : "[  no ]",
                  core::DescribeQuery(cand.query).c_str());
      if (cand.result.has_value()) {
        std::printf("       -> %g   (%s)\n", *cand.result,
                    cand.query.ToSql().c_str());
      }
    }
  }
  std::printf("----------------------------------------------------\n");
  std::printf("%zu claims, %zu flagged. The '13 percent' self-taught claim "
              "reproduces the paper's Table 9 rounding error.\n",
              report->verdicts.size(), report->NumFlagged());
  return 0;
}
