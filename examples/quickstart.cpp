// Quickstart: build a small database and an article in a few lines, run the
// AggChecker, and print the spell-checker-style markup.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/aggchecker.h"
#include "core/markup.h"
#include "core/query_describer.h"
#include "db/table.h"
#include "text/document.h"

using namespace aggchecker;

int main() {
  // 1. A relational data set (normally loaded from CSV via Table::FromCsv).
  auto data = csv::Parse(
      "Name,Team,Games,Category\n"
      "A,OAK,indef,substance abuse repeated offense\n"
      "B,MIA,indef,substance abuse repeated offense\n"
      "C,DET,indef,substance abuse repeated offense\n"
      "D,BUF,indef,gambling\n"
      "E,CAR,16,substance abuse\n"
      "F,CHI,8,personal conduct\n");
  db::Database database("nfl");
  (void)database.AddTable(*db::Table::FromCsv("nflsuspensions", *data));

  // 2. The text summarizing it — note the wrong claim ("two").
  auto doc = text::ParseDocument(R"(
<h1>Punishments in the league</h1>
<h2>Lifetime bans</h2>
<p>There were only four previous lifetime bans in my database. Two were
for repeated substance abuse, one was for gambling.</p>
)");
  if (!doc.ok()) {
    std::fprintf(stderr, "parse error: %s\n", doc.status().ToString().c_str());
    return 1;
  }

  // 3. Check the document.
  auto checker = core::AggChecker::Create(&database);
  if (!checker.ok()) {
    std::fprintf(stderr, "%s\n", checker.status().ToString().c_str());
    return 1;
  }
  auto report = checker->Check(*doc);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  // 4. Markup plus per-claim detail.
  std::printf("%s\n", core::RenderMarkup(*doc, *report,
                                         core::MarkupStyle::kPlain).c_str());
  for (const auto& v : report->verdicts) {
    const auto* best = v.best();
    std::printf("claim %-6s value=%-6g %s\n", v.claim.id.c_str(),
                v.claim.claimed_value(),
                v.likely_erroneous ? "FLAGGED" : "verified");
    if (best != nullptr) {
      std::printf("  best query : %s\n", best->query.ToSql().c_str());
      std::printf("  description: %s\n",
                  core::DescribeQuery(best->query).c_str());
      if (best->result.has_value()) {
        std::printf("  evaluates to %g (probability %.2f)\n", *best->result,
                    best->probability);
      }
    }
  }
  std::printf("\n%zu claims, %zu flagged, %d EM iterations, %zu candidate "
              "queries evaluated\n",
              report->verdicts.size(), report->NumFlagged(),
              report->em_iterations, report->queries_evaluated);
  return 0;
}
