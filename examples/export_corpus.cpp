// Publishes the full 53-case corpus to disk (article.html + CSV data +
// ground truth per case) — the paper's "all test cases will be made
// available online", as a directory you can point check_files at.
//
//   $ ./build/examples/export_corpus [output_dir] [seed]

#include <cstdio>
#include <cstdlib>

#include "corpus/corpus.h"
#include "corpus/export.h"

using namespace aggchecker;

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "corpus_export";
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  auto corpus = corpus::FullCorpus(seed);
  Status s = corpus::ExportCorpus(corpus, dir);
  if (!s.ok()) {
    std::fprintf(stderr, "export failed: %s\n", s.ToString().c_str());
    return 1;
  }
  size_t claims = 0;
  for (const auto& c : corpus) claims += c.ground_truth.size();
  std::printf("exported %zu cases (%zu claims) to %s/\n", corpus.size(),
              claims, dir.c_str());
  std::printf("try: ./build/examples/check_files %s/%s/article.html "
              "%s/%s/*.csv\n",
              dir.c_str(), corpus[0].name.c_str(), dir.c_str(),
              corpus[0].name.c_str());
  return 0;
}
