// Data-journalism workflow: fact-check a text file against a CSV data set.
//
//   $ ./build/examples/check_files article.html data.csv [data2.csv ...]
//   $ ./build/examples/check_files --demo     # embedded demo inputs
//
// The article may use <h1>/<h2>/<h3>/<p> markup or markdown-ish headings;
// each CSV file becomes one table (named after the file).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/aggchecker.h"
#include "core/markup.h"
#include "util/csv.h"

using namespace aggchecker;

namespace {

constexpr const char* kDemoArticle = R"(
# Retail season summary

## Online sales
In total, our data lists 8 transactions. Exactly 5 transactions were
handled through the online channel. The average revenue across all
transactions was 100 dollars.

## Regions
Exactly 3 transactions came from the north region.
)";

constexpr const char* kDemoCsv =
    "Region,Channel,Revenue\n"
    "north,online,50\n"
    "north,online,150\n"
    "north,retail,100\n"
    "south,online,75\n"
    "south,retail,125\n"
    "east,online,80\n"
    "east,online,120\n"
    "west,retail,100\n";

std::string ReadFileOrDie(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string TableNameFromPath(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path
                                                : path.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return name.empty() ? "data" : name;
}

}  // namespace

int main(int argc, char** argv) {
  std::string article_text;
  db::Database database("input");

  if (argc == 2 && std::strcmp(argv[1], "--demo") == 0) {
    article_text = kDemoArticle;
    auto data = csv::Parse(kDemoCsv);
    (void)database.AddTable(*db::Table::FromCsv("transactions", *data));
  } else if (argc >= 3) {
    article_text = ReadFileOrDie(argv[1]);
    for (int i = 2; i < argc; ++i) {
      auto data = csv::ReadFile(argv[i]);
      if (!data.ok()) {
        std::fprintf(stderr, "%s: %s\n", argv[i],
                     data.status().ToString().c_str());
        return 1;
      }
      auto table = db::Table::FromCsv(TableNameFromPath(argv[i]), *data);
      if (!table.ok()) {
        std::fprintf(stderr, "%s: %s\n", argv[i],
                     table.status().ToString().c_str());
        return 1;
      }
      auto status = database.AddTable(std::move(*table));
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
    }
  } else {
    std::fprintf(stderr,
                 "usage: %s <article.txt|html> <data.csv> [more.csv ...]\n"
                 "       %s --demo\n",
                 argv[0], argv[0]);
    return 2;
  }

  auto doc = text::ParseDocument(article_text);
  if (!doc.ok()) {
    std::fprintf(stderr, "article: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  auto checker = core::AggChecker::Create(&database);
  if (!checker.ok()) {
    std::fprintf(stderr, "%s\n", checker.status().ToString().c_str());
    return 1;
  }
  auto report = checker->Check(*doc);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", core::RenderMarkup(*doc, *report,
                                         core::MarkupStyle::kAnsi).c_str());
  std::printf("%zu claims checked, %zu flagged as likely erroneous "
              "(%.2fs, %zu queries)\n",
              report->verdicts.size(), report->NumFlagged(),
              report->total_seconds, report->queries_evaluated);
  return report->NumFlagged() > 0 ? 3 : 0;
}
