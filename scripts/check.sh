#!/usr/bin/env bash
# Tier-1+ gate: builds the Release and ASan+UBSan presets and runs the full
# test suite under both, then builds the TSan preset and runs the
# `concurrency`-labeled subset (thread pool, governor, eval engine,
# parallel determinism) under ThreadSanitizer. Any test failure or
# sanitizer report fails the script (sanitizers are built with
# -fno-sanitize-recover, so a report aborts the offending test). Run from
# the repository root:
#
#   scripts/check.sh              # all presets + perf smoke
#   scripts/check.sh default      # just the Release preset
#   scripts/check.sh asan-ubsan   # just the sanitizer preset
#   scripts/check.sh tsan         # just the TSan concurrency subset
#   scripts/check.sh perf-smoke   # just the perf regression gates
#   scripts/check.sh fleet-smoke  # small fleet end to end (generator +
#                                 # cross-document scheduler)
#   scripts/check.sh snapshot-smoke # snapshot cold start: save/load round
#                                 # trip, >= 5x load-vs-build, bit-identity
#   scripts/check.sh incremental-smoke # incremental re-verification:
#                                 # ReCheck >= 10x cold, bit-identity
#   scripts/check.sh probe-smoke  # verification-aware candidate pruning:
#                                 # >= 30% pruned, naive rung >= x1.3,
#                                 # bit-identity on both ladder rungs
#   scripts/check.sh chaos-matrix # exhaustive fault-point sweep (ASan+UBSan)
#
# The chaos-matrix step first checks that the compile-time fault-point
# manifest (src/util/fault_points.h) matches the AGG_FAULT_POINT sites
# actually present in the source tree (drift in either direction fails),
# then builds the ASan+UBSan preset and runs the chaos suites with
# AGG_CHAOS_MATRIX=full, which arms every manifest point against every
# embedded article instead of the bounded sample the default gate runs.
#
# The fleet-smoke step builds the Release preset's `bench_fleet_throughput`
# binary and runs it with --smoke: a ~50-article fleet is generated and
# drained through the cross-document scheduler, and the run fails unless
# throughput is nonzero, every verdict matches the generator's
# by-construction ground truth (zero erroneous verdicts), and the scheduled
# run is bit-identical to the one-at-a-time reference.
#
# The snapshot-smoke step builds the Release preset's
# `bench_snapshot_coldstart` binary and runs it with --smoke: every case is
# published to CSV, snapshotted, and cold-started both ways; the run fails
# unless loading the mmap snapshot is at least 5x faster than rebuilding
# from CSV, the two paths report bit-identically on every case, and a
# corrupted snapshot fails cleanly instead of loading.
#
# The incremental-smoke step builds the Release preset's
# `bench_incremental_recheck` binary and runs it with --smoke: one table of
# one corpus case ingests new rows, the whole corpus is re-verified through
# AggChecker::ReCheck, and the run fails unless the incremental pass is at
# least 10x faster than re-checking every case cold or any spliced report
# diverges from its from-scratch reference.
#
# The probe-smoke step builds the Release preset's `bench_probe_pruning`
# binary and runs it with --smoke: the embedded articles plus a small
# generated corpus are checked with probe pruning on and off across two
# rungs of the Table 6 strategy ladder, and the run fails unless probes
# prune at least 30% of candidates, the naive (per-candidate evaluation)
# rung is at least x1.3 faster with pruning on, and pruned reports are
# bit-identical to unpruned ones on every case of both rungs.
#
# The perf-smoke step builds the Release preset's `perf_smoke` binary and
# fails if (a) vectorized cube execution is not faster than the scalar
# oracle, (b) merged+cached engine evaluation over a PK-FK join workload is
# not at least 5x the naive cache-off path (the shared relation cache must
# pay for itself), (c) on machines with >= 2 hardware threads, 2-thread
# merged evaluation is slower than 1-thread, or (d) a multi-iteration EM
# run fails to reuse cube plans: plan_cache_hits must be > 0, a repeated
# Check must build zero new plans, and the fingerprint path must produce
# the same verdicts as the string-keyed reference path. Every gate also
# requires bit-identical results between the compared configurations.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
presets=("${@:-default}")
if [[ $# -eq 0 ]]; then
  presets=(default asan-ubsan tsan perf-smoke fleet-smoke snapshot-smoke
           incremental-smoke probe-smoke)
fi

for preset in "${presets[@]}"; do
  if [[ "$preset" == "chaos-matrix" ]]; then
    echo "==> [chaos-matrix] manifest/source sync"
    manifest="$(sed -n 's/^ *X("\([^"]*\)").*/\1/p' src/util/fault_points.h \
                | sort)"
    sites="$(grep -rhoE 'AGG_FAULT_POINT(_STATUS)?\("[^"]+"' src \
             --include='*.cc' | sed 's/.*("\([^"]*\)"/\1/' | sort -u)"
    if [[ "$manifest" != "$sites" ]]; then
      echo "error: fault-point manifest out of sync with source tree" >&2
      diff <(printf '%s\n' "$manifest") <(printf '%s\n' "$sites") >&2 || true
      exit 1
    fi
    echo "==> [chaos-matrix] build (asan-ubsan)"
    cmake --preset asan-ubsan
    cmake --build --preset asan-ubsan -j "$jobs"
    echo "==> [chaos-matrix] full sweep"
    AGG_CHAOS_MATRIX=full ctest --preset asan-ubsan -j "$jobs" \
      -R '(Chaos|Recovery)'
    continue
  fi
  if [[ "$preset" == "perf-smoke" ]]; then
    echo "==> [perf-smoke] build"
    cmake --preset default >/dev/null
    cmake --build --preset default -j "$jobs" --target perf_smoke
    echo "==> [perf-smoke] run"
    ./build/bench/perf_smoke
    continue
  fi
  if [[ "$preset" == "fleet-smoke" ]]; then
    echo "==> [fleet-smoke] build"
    cmake --preset default >/dev/null
    cmake --build --preset default -j "$jobs" --target bench_fleet_throughput
    echo "==> [fleet-smoke] run"
    (cd build/bench && ./bench_fleet_throughput --smoke)
    continue
  fi
  if [[ "$preset" == "incremental-smoke" ]]; then
    echo "==> [incremental-smoke] build"
    cmake --preset default >/dev/null
    cmake --build --preset default -j "$jobs" \
      --target bench_incremental_recheck
    echo "==> [incremental-smoke] run"
    (cd build/bench && ./bench_incremental_recheck --smoke)
    continue
  fi
  if [[ "$preset" == "probe-smoke" ]]; then
    echo "==> [probe-smoke] build"
    cmake --preset default >/dev/null
    cmake --build --preset default -j "$jobs" \
      --target bench_probe_pruning
    echo "==> [probe-smoke] run"
    (cd build/bench && ./bench_probe_pruning --smoke)
    continue
  fi
  if [[ "$preset" == "snapshot-smoke" ]]; then
    echo "==> [snapshot-smoke] build"
    cmake --preset default >/dev/null
    cmake --build --preset default -j "$jobs" \
      --target bench_snapshot_coldstart
    echo "==> [snapshot-smoke] run"
    (cd build/bench && ./bench_snapshot_coldstart --smoke)
    continue
  fi
  echo "==> [$preset] configure"
  cmake --preset "$preset"
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> [$preset] test"
  ctest --preset "$preset" -j "$jobs"
done

echo "==> all presets green"
