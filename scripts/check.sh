#!/usr/bin/env bash
# Tier-1+ gate: builds the Release and ASan+UBSan presets and runs the full
# test suite under both, then builds the TSan preset and runs the
# `concurrency`-labeled subset (thread pool, governor, eval engine,
# parallel determinism) under ThreadSanitizer. Any test failure or
# sanitizer report fails the script (sanitizers are built with
# -fno-sanitize-recover, so a report aborts the offending test). Run from
# the repository root:
#
#   scripts/check.sh            # all three presets
#   scripts/check.sh default    # just the Release preset
#   scripts/check.sh asan-ubsan # just the sanitizer preset
#   scripts/check.sh tsan       # just the TSan concurrency subset
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
presets=("${@:-default}")
if [[ $# -eq 0 ]]; then
  presets=(default asan-ubsan tsan)
fi

for preset in "${presets[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset"
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> [$preset] test"
  ctest --preset "$preset" -j "$jobs"
done

echo "==> all presets green"
